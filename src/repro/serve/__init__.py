"""repro.serve: a deterministic concurrent query-serving engine.

Runs many PPGNN/PPGNN-OPT/Naive sessions against one shared LSP with a
seeded workload generator, pluggable scheduling policies behind bounded
queues, a (multi)process execution pool, and shared caches (nonce pools
per public key, an LRU of kNN candidate answers).  See SERVING.md.
"""

from repro.serve.cache import CacheStats, KnnLRUCache, knn_cache_key
from repro.serve.control import (
    SHED_POLICIES,
    BreakerBoard,
    CircuitBreaker,
    ControlConfig,
    OverloadController,
)
from repro.serve.costs import CostModel
from repro.serve.engine import (
    PlannedJob,
    RejectedJob,
    ServeConfig,
    ServeEngine,
    ServingReport,
)
from repro.serve.pool import BucketRunner, JobOutcome, LSPSpec, RunnerOptions
from repro.serve.scheduler import (
    POLICIES,
    FairShareScheduler,
    FIFOScheduler,
    Scheduler,
    ShortestCostScheduler,
    make_scheduler,
)
from repro.serve.workload import (
    GroupProfile,
    QueryJob,
    Workload,
    WorkloadSpec,
    generate_workload,
)

__all__ = [
    "CacheStats",
    "KnnLRUCache",
    "knn_cache_key",
    "SHED_POLICIES",
    "BreakerBoard",
    "CircuitBreaker",
    "ControlConfig",
    "OverloadController",
    "CostModel",
    "PlannedJob",
    "RejectedJob",
    "ServeConfig",
    "ServeEngine",
    "ServingReport",
    "BucketRunner",
    "JobOutcome",
    "LSPSpec",
    "RunnerOptions",
    "POLICIES",
    "Scheduler",
    "FIFOScheduler",
    "ShortestCostScheduler",
    "FairShareScheduler",
    "make_scheduler",
    "GroupProfile",
    "QueryJob",
    "Workload",
    "WorkloadSpec",
    "generate_workload",
]
