"""Deterministic workload generation for the serving engine.

A workload is a fixed fleet of *groups* (each with a stable membership and
location vector, modeling friends who query together repeatedly) plus a
seeded stream of :class:`QueryJob` arrivals over those groups.  Everything
is a pure function of the spec — two calls with the same spec produce the
same groups, the same protocol/k draws, the same Poisson arrival times.

``repeat_fraction`` models the hot-query phenomenon a cache exists for: a
repeat re-issues an earlier job *verbatim* — same group, protocol, k, and
per-query seed — so the coordinator draws the same dummies and placement
plan and the LSP sees the exact candidate queries it already answered.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.space import LocationSpace

_PROTOCOLS = ("ppgnn", "ppgnn-opt", "naive")

#: Multiplier separating per-job seed streams from the spec seed.
_SEED_STRIDE = 1_000_003


@dataclass(frozen=True, slots=True)
class GroupProfile:
    """One long-lived query group: stable members, stable tenant."""

    group_id: int
    tenant: str
    locations: tuple[Point, ...]


@dataclass(frozen=True, slots=True)
class QueryJob:
    """One query arrival, fully determined at generation time.

    ``seed`` pins the round's randomness (dummies, placement plan,
    sanitation sampling), so re-running a job reproduces it exactly;
    ``repeat_of`` names the earlier job this one re-issues verbatim.
    ``brownout_k`` is set by the overload controller at admission time:
    when not None the job executes with this smaller k (a degraded,
    quality-scored answer) while ``k`` records what was requested.
    """

    job_id: int
    tenant: str
    group_id: int
    protocol: str
    k: int
    seed: int
    arrival_time: float
    repeat_of: int | None = None
    brownout_k: int | None = None


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of a serving workload.

    Attributes
    ----------
    queries:
        Total jobs to generate.
    arrival:
        ``"poisson"`` — open loop, exponential inter-arrivals at
        ``rate_qps``; ``"closed"`` — ``concurrency`` clients that each
        issue the next job ``think_seconds`` after their previous one
        completes (arrival times are then assigned by the engine's
        event loop, not here).
    protocol_mix / group_size_mix / k_mix:
        Weighted draws for each fresh (non-repeat) job.
    tenants:
        Tenant names; groups are assigned round-robin.
    groups:
        Distinct group count (each with fixed membership and locations).
    repeat_fraction:
        Probability a job re-issues a uniformly chosen earlier job.
    burst_multiplier / burst_start / burst_duration:
        A flash-crowd window for Poisson arrivals: while the clock is in
        ``[burst_start, burst_start + burst_duration)`` the arrival rate
        is ``rate_qps * burst_multiplier``.  The defaults (duration 0)
        draw the identical arrival stream the pre-burst generator did.
    """

    queries: int = 50
    arrival: str = "poisson"
    rate_qps: float = 4.0
    concurrency: int = 4
    think_seconds: float = 0.0
    protocol_mix: Mapping[str, float] = field(
        default_factory=lambda: MappingProxyType({"ppgnn": 1.0})
    )
    group_size_mix: Mapping[int, float] = field(
        default_factory=lambda: MappingProxyType({3: 1.0})
    )
    k_mix: Mapping[int, float] = field(
        default_factory=lambda: MappingProxyType({8: 1.0})
    )
    tenants: tuple[str, ...] = ("tenant-0",)
    groups: int = 4
    repeat_fraction: float = 0.0
    burst_multiplier: float = 1.0
    burst_start: float = 0.0
    burst_duration: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.queries < 0:
            raise ConfigurationError("queries must be non-negative")
        if self.arrival not in ("poisson", "closed"):
            raise ConfigurationError("arrival must be 'poisson' or 'closed'")
        if self.arrival == "poisson" and self.rate_qps <= 0:
            raise ConfigurationError("rate_qps must be positive")
        if self.arrival == "closed" and self.concurrency < 1:
            raise ConfigurationError("concurrency must be >= 1")
        if self.think_seconds < 0:
            raise ConfigurationError("think_seconds must be non-negative")
        if self.groups < 1:
            raise ConfigurationError("a workload needs at least one group")
        if not self.tenants:
            raise ConfigurationError("a workload needs at least one tenant")
        if not 0.0 <= self.repeat_fraction <= 1.0:
            raise ConfigurationError("repeat_fraction must be in [0, 1]")
        if self.burst_multiplier <= 0:
            raise ConfigurationError("burst_multiplier must be positive")
        if self.burst_start < 0 or self.burst_duration < 0:
            raise ConfigurationError(
                "burst_start and burst_duration must be non-negative"
            )
        for name, mix in (
            ("protocol_mix", self.protocol_mix),
            ("group_size_mix", self.group_size_mix),
            ("k_mix", self.k_mix),
        ):
            if not mix or any(weight <= 0 for weight in mix.values()):
                raise ConfigurationError(f"{name} needs positive weights")
        for protocol in self.protocol_mix:
            if protocol not in _PROTOCOLS:
                raise ConfigurationError(
                    f"unknown protocol {protocol!r}; known: {list(_PROTOCOLS)}"
                )
        for size in self.group_size_mix:
            if size < 1:
                raise ConfigurationError("group sizes must be >= 1")
        for k in self.k_mix:
            if k < 1:
                raise ConfigurationError("k values must be >= 1")


@dataclass(frozen=True, slots=True)
class Workload:
    """A generated workload: the group fleet plus the ordered job stream."""

    spec: WorkloadSpec
    groups: tuple[GroupProfile, ...]
    jobs: tuple[QueryJob, ...]

    def group(self, group_id: int) -> GroupProfile:
        return self.groups[group_id]


def _draw(rng: random.Random, mix: Mapping) -> object:
    choices = list(mix)
    weights = [mix[choice] for choice in choices]
    return rng.choices(choices, weights=weights)[0]


def generate_workload(spec: WorkloadSpec, space: LocationSpace) -> Workload:
    """Materialize a spec into concrete groups and jobs (pure in the seed)."""
    rng = random.Random(spec.seed)
    nprng = np.random.default_rng(spec.seed)
    groups = []
    for group_id in range(spec.groups):
        size = _draw(rng, spec.group_size_mix)
        groups.append(
            GroupProfile(
                group_id=group_id,
                tenant=spec.tenants[group_id % len(spec.tenants)],
                locations=tuple(space.sample_points(size, nprng)),
            )
        )

    jobs: list[QueryJob] = []
    clock = 0.0
    for job_id in range(spec.queries):
        if spec.arrival == "poisson":
            rate = spec.rate_qps
            if (
                spec.burst_duration > 0
                and spec.burst_start <= clock < spec.burst_start + spec.burst_duration
            ):
                rate *= spec.burst_multiplier
            clock += rng.expovariate(rate)
        arrival = clock if spec.arrival == "poisson" else 0.0
        if jobs and rng.random() < spec.repeat_fraction:
            earlier = jobs[rng.randrange(len(jobs))]
            jobs.append(
                QueryJob(
                    job_id=job_id,
                    tenant=earlier.tenant,
                    group_id=earlier.group_id,
                    protocol=earlier.protocol,
                    k=earlier.k,
                    seed=earlier.seed,
                    arrival_time=arrival,
                    repeat_of=(
                        earlier.repeat_of
                        if earlier.repeat_of is not None
                        else earlier.job_id
                    ),
                )
            )
            continue
        group = groups[rng.randrange(len(groups))]
        jobs.append(
            QueryJob(
                job_id=job_id,
                tenant=group.tenant,
                group_id=group.group_id,
                protocol=_draw(rng, spec.protocol_mix),
                k=_draw(rng, spec.k_mix),
                seed=spec.seed * _SEED_STRIDE + job_id,
                arrival_time=arrival,
            )
        )
    return Workload(spec=spec, groups=tuple(groups), jobs=tuple(jobs))
