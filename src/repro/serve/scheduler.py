"""Pluggable scheduling policies over one bounded admission queue.

A scheduler decides *which* admitted job the next free worker serves.
All policies share the bounded-queue contract: ``submit`` raises
:class:`~repro.errors.QueueFullError` at capacity (typed backpressure —
the engine counts the rejection instead of growing memory without bound),
``pop`` returns the chosen job or None, and ties always break on
``job_id`` so every policy is fully deterministic.

- :class:`FIFOScheduler` — arrival order; the fairness-free baseline.
- :class:`ShortestCostScheduler` — shortest *predicted* service time
  first (the prediction comes from :class:`~repro.serve.costs.CostModel`,
  the same clock the event loop runs on); minimizes mean latency but can
  starve expensive protocols under load.
- :class:`FairShareScheduler` — serves the tenant with the least
  cumulative predicted cost served so far (min-cost fair queuing), FIFO
  within a tenant; bounds how far one chatty tenant can push the others'
  latency.
"""

from __future__ import annotations

import heapq
from collections import defaultdict, deque

from repro.errors import ConfigurationError, QueueFullError
from repro.serve.workload import QueryJob

POLICIES = ("fifo", "shortest-cost", "fair-share")


class Scheduler:
    """Base: a bounded queue of (job, predicted service seconds)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError("queue capacity must be >= 1")
        self.capacity = capacity
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def submit(self, job: QueryJob, cost_seconds: float) -> None:
        """Admit one job, or raise :class:`QueueFullError` at capacity."""
        if self._size >= self.capacity:
            raise QueueFullError(self._size, self.capacity)
        self._enqueue(job, cost_seconds)
        self._size += 1

    def pop(self) -> QueryJob | None:
        """The next job to serve under this policy, or None when idle."""
        if self._size == 0:
            return None
        job = self._dequeue()
        self._size -= 1
        return job

    def drain(self) -> list[tuple[QueryJob, float]]:
        """Remove and return every queued (job, cost) pair.

        The overload controller's policy-switch actuator uses this to
        migrate a live queue into a fresh scheduler.  Order is
        unspecified — the receiving scheduler re-ranks under its own
        policy — but the *set* of entries is exact, so no admitted job
        is ever dropped by a switch.
        """
        items = self._drain()
        self._size = 0
        return items

    def _enqueue(self, job: QueryJob, cost_seconds: float) -> None:
        raise NotImplementedError

    def _dequeue(self) -> QueryJob:
        raise NotImplementedError

    def _drain(self) -> list[tuple[QueryJob, float]]:
        raise NotImplementedError


class FIFOScheduler(Scheduler):
    """Serve in arrival order."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._queue: deque[tuple[QueryJob, float]] = deque()

    def _enqueue(self, job: QueryJob, cost_seconds: float) -> None:
        self._queue.append((job, cost_seconds))

    def _dequeue(self) -> QueryJob:
        return self._queue.popleft()[0]

    def _drain(self) -> list[tuple[QueryJob, float]]:
        items = list(self._queue)
        self._queue.clear()
        return items


class ShortestCostScheduler(Scheduler):
    """Serve the cheapest predicted job first (SJF on the model clock)."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._heap: list[tuple[float, int, QueryJob]] = []

    def _enqueue(self, job: QueryJob, cost_seconds: float) -> None:
        heapq.heappush(self._heap, (cost_seconds, job.job_id, job))

    def _dequeue(self) -> QueryJob:
        return heapq.heappop(self._heap)[2]

    def _drain(self) -> list[tuple[QueryJob, float]]:
        items = [(job, cost) for cost, _, job in self._heap]
        self._heap.clear()
        return items


class FairShareScheduler(Scheduler):
    """Min-served-cost fair queuing across tenants, FIFO within a tenant."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._queues: dict[str, deque[tuple[QueryJob, float]]] = defaultdict(deque)
        self._served_cost: dict[str, float] = defaultdict(float)

    def _enqueue(self, job: QueryJob, cost_seconds: float) -> None:
        self._queues[job.tenant].append((job, cost_seconds))

    def _dequeue(self) -> QueryJob:
        tenant = min(
            (t for t, q in self._queues.items() if q),
            key=lambda t: (self._served_cost[t], t),
        )
        job, cost = self._queues[tenant].popleft()
        self._served_cost[tenant] += cost
        return job

    def _drain(self) -> list[tuple[QueryJob, float]]:
        items = [
            entry for tenant in sorted(self._queues)
            for entry in self._queues[tenant]
        ]
        self._queues.clear()
        return items


def make_scheduler(policy: str, capacity: int) -> Scheduler:
    """Instantiate a policy by name (the engine's and CLI's entry point)."""
    if policy == "fifo":
        return FIFOScheduler(capacity)
    if policy == "shortest-cost":
        return ShortestCostScheduler(capacity)
    if policy == "fair-share":
        return FairShareScheduler(capacity)
    raise ConfigurationError(f"unknown policy {policy!r}; known: {list(POLICIES)}")
