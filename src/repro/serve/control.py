"""Closed-loop overload control for the serving engine.

PR 5 taught the library to *measure* pressure (SLO burn rates,
queue-delay attribution) and PR 6 made degraded answers a first-class,
quality-scored result — this module closes the loop.  An
:class:`OverloadController` is evaluated on the engine's **simulated
clock** at fixed control ticks, reads a sliding-window view of the
run's own signals, and drives four actuators:

1. **Worker-pool autoscaling** between ``min_workers`` and
   ``max_workers`` with hysteresis (``hysteresis_ticks`` calm ticks
   before any de-escalation).
2. **Scheduler policy switching** — under pressure the queue migrates
   to ``pressure_policy`` (shortest-cost by default, trading fairness
   for drain rate), and back once calm.
3. **Per-tenant brownout shedding** — past ``brownout_burn`` the
   heaviest tenants are either rejected with a typed
   :class:`~repro.errors.OverloadSheddedError` carrying a retry-after
   tick, or degraded to a smaller ``k`` whose answer is an exact,
   quality-scored prefix of the requested top-k
   (:func:`repro.metrics.quality.estimate_brownout_quality`).
4. **Per-(shard, replica) circuit breakers** with half-open probes
   (:class:`BreakerBoard`) wrapping the cluster failover path, plus a
   per-session transport retry *budget* so retries cannot amplify an
   overload into a retry storm.

Everything is deterministic: signals are pure functions of the planned
timeline, ticks live on the simulated clock, tie-breaks are
lexicographic — so the control timeline is byte-identical across runs
and across the serial/multiprocessing executors.  When the loop never
triggers, the engine's plan, report, and ``answers_digest`` are
byte-identical to ``control=None`` (the regression fixtures pin this).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.obs import Observability
from repro.obs.analyze import SLOPolicy, evaluate_slo
from repro.serve.scheduler import POLICIES
from repro.serve.workload import QueryJob

#: Brownout admission verdicts.
SHED_POLICIES = ("degrade", "reject", "off")


@dataclass(frozen=True)
class ControlConfig:
    """Tunables of the closed control loop.

    Attributes
    ----------
    tick_seconds / window_seconds:
        The loop evaluates every ``tick_seconds`` of simulated time over
        a trailing ``window_seconds`` view of completions, arrivals, and
        rejections.
    slo:
        The :class:`~repro.obs.analyze.SLOPolicy` whose burn rates are
        the pressure signal (evaluated over the sliding window, not the
        whole run).
    min_workers / max_workers:
        Autoscaling bounds; ``None`` pins either bound to the engine's
        configured worker count (so the default config never scales).
    scale_up_burn / scale_down_burn / hysteresis_ticks:
        Pressure at or above ``scale_up_burn`` escalates; pressure at or
        below ``scale_down_burn`` for ``hysteresis_ticks`` consecutive
        ticks de-escalates one step.  The gap between the two thresholds
        is the hysteresis band that prevents actuator flapping.
    pressure_policy / policy_switch_burn:
        Scheduler policy to switch to under pressure (``None`` disables
        the actuator).
    shed_policy / brownout_burn / brownout_k / retry_after_ticks:
        Past ``brownout_burn`` the heaviest tenants (by window arrival
        count) brown out: ``"reject"`` sheds their sessions with a typed
        error carrying ``retry_after_ticks``; ``"degrade"`` (default)
        serves them at ``brownout_k`` (default: half the requested k,
        floor 1); ``"off"`` disables the actuator.
    queue_high_fraction:
        Queue-depth pressure normalizer: depth at this fraction of
        capacity counts as burn 1.0 — a leading indicator that fires
        before latency SLOs are measurably violated.
    breaker_failures / breaker_probe_after:
        Circuit-breaker knobs for cluster mode: a (shard, replica)
        breaker opens after ``breaker_failures`` consecutive failures
        and half-opens for a probe ``breaker_probe_after`` sub-query
        sequence steps later.  ``breaker_failures=None`` disables
        breakers.
    retry_budget:
        Per-session transport retry budget (total retransmissions, not
        per message); ``None`` leaves the transport's historical
        per-message behaviour.
    """

    tick_seconds: float = 0.25
    window_seconds: float = 1.0
    slo: SLOPolicy = SLOPolicy()
    min_workers: int | None = None
    max_workers: int | None = None
    scale_up_burn: float = 1.0
    scale_down_burn: float = 0.5
    hysteresis_ticks: int = 2
    pressure_policy: str | None = "shortest-cost"
    policy_switch_burn: float = 1.25
    shed_policy: str = "degrade"
    brownout_burn: float = 1.5
    brownout_k: int | None = None
    retry_after_ticks: int = 4
    queue_high_fraction: float = 0.5
    breaker_failures: int | None = 2
    breaker_probe_after: int = 8
    retry_budget: int | None = None

    def __post_init__(self) -> None:
        if self.tick_seconds <= 0 or self.window_seconds <= 0:
            raise ConfigurationError(
                "tick_seconds and window_seconds must be positive"
            )
        for name in ("min_workers", "max_workers"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ConfigurationError(f"{name} must be >= 1 or None")
        if (
            self.min_workers is not None
            and self.max_workers is not None
            and self.min_workers > self.max_workers
        ):
            raise ConfigurationError("min_workers must be <= max_workers")
        if self.scale_up_burn <= 0 or self.policy_switch_burn <= 0:
            raise ConfigurationError("escalation thresholds must be positive")
        if not 0 <= self.scale_down_burn < self.scale_up_burn:
            raise ConfigurationError(
                "scale_down_burn must be in [0, scale_up_burn)"
            )
        if self.brownout_burn <= 0:
            raise ConfigurationError("brownout_burn must be positive")
        if self.hysteresis_ticks < 1:
            raise ConfigurationError("hysteresis_ticks must be >= 1")
        if self.pressure_policy is not None and self.pressure_policy not in POLICIES:
            raise ConfigurationError(
                f"unknown pressure_policy {self.pressure_policy!r}; "
                f"known: {list(POLICIES)}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ConfigurationError(
                f"unknown shed_policy {self.shed_policy!r}; "
                f"known: {list(SHED_POLICIES)}"
            )
        if self.brownout_k is not None and self.brownout_k < 1:
            raise ConfigurationError("brownout_k must be >= 1 or None")
        if self.retry_after_ticks < 1:
            raise ConfigurationError("retry_after_ticks must be >= 1")
        if not 0 < self.queue_high_fraction <= 1:
            raise ConfigurationError("queue_high_fraction must be in (0, 1]")
        if self.breaker_failures is not None and self.breaker_failures < 1:
            raise ConfigurationError("breaker_failures must be >= 1 or None")
        if self.breaker_probe_after < 1:
            raise ConfigurationError("breaker_probe_after must be >= 1")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ConfigurationError("retry_budget must be >= 0 or None")


def _window_percentile(sorted_values: list[float], fraction: float) -> float:
    """Exact nearest-rank percentile (mirrors the engine's reporting)."""
    from repro.serve.engine import _percentile

    return _percentile(sorted_values, fraction)


class OverloadController:
    """The engine-side control loop: signals in, actuation decisions out.

    The engine calls :meth:`on_arrival` / :meth:`on_completion` /
    :meth:`on_rejection` as its discrete-event simulation advances,
    :meth:`admission` for every arriving job, and :meth:`on_tick` at
    every control tick.  ``on_tick`` returns the actions the engine must
    apply to its own state (worker count, scheduler); brownout decisions
    are applied internally via ``admission``.

    Every actuation appends an auditable entry to :attr:`timeline` —
    tick, simulated time, signal values, decision, affected tenants —
    which lands in the serving report's ``control`` section.
    """

    def __init__(
        self,
        config: ControlConfig,
        *,
        workers: int,
        policy: str,
        queue_capacity: int,
    ) -> None:
        self.config = config
        self.initial_workers = workers
        self.initial_policy = policy
        self.queue_capacity = queue_capacity
        self.workers = workers
        self.min_workers = (
            config.min_workers if config.min_workers is not None else workers
        )
        self.max_workers = (
            config.max_workers if config.max_workers is not None else workers
        )
        self.policy = policy
        self.tick_index = 0
        self.calm_ticks = 0
        self.brownout_active = False
        self.shed_tenants: tuple[str, ...] = ()
        self.last_burn = 0.0
        self.scale_ups = 0
        self.scale_downs = 0
        self.policy_switches = 0
        self.brownouts = 0
        self.shed = 0
        self.degraded = 0
        self.per_tenant: dict[str, dict[str, int]] = {}
        self.timeline: list[dict] = []
        # Sliding windows, pruned at each tick.
        self._completions: deque = deque()  # (time, latency, service, proto)
        self._arrivals: deque = deque()  # (time, tenant)
        self._rejections: deque = deque()  # (time,) — organic only, never sheds
        # Shed/degrade decisions since the last tick, aggregated into one
        # timeline entry per tick so flash crowds don't bloat the report.
        self._tick_shed: dict[str, int] = {}
        self._tick_degraded: dict[str, int] = {}

    # ------------------------------------------------------------ observing

    def on_arrival(self, now: float, tenant: str) -> None:
        self._arrivals.append((now, tenant))

    def on_completion(
        self, now: float, *, arrival: float, service: float, protocol: str
    ) -> None:
        self._completions.append((now, now - arrival, service, protocol))

    def on_rejection(self, now: float) -> None:
        """An *organic* (quota/queue) rejection — shed sessions are
        deliberately excluded so the controller's own shedding cannot
        feed back into its error signal and latch the brownout on."""
        self._rejections.append((now,))

    # ------------------------------------------------------------- signals

    def _prune(self, now: float) -> None:
        cutoff = now - self.config.window_seconds
        for window in (self._completions, self._arrivals, self._rejections):
            while window and window[0][0] < cutoff:
                window.popleft()

    def _signals(self, now: float, queue_depth: int) -> tuple[float, dict]:
        """Max SLO burn over the window, plus the per-objective burns."""
        self._prune(now)
        burns: dict[str, float] = {}
        completions = list(self._completions)
        rejections = len(self._rejections)
        if completions or rejections:
            latencies = sorted(entry[1] for entry in completions)
            per_protocol: dict[str, dict] = {}
            for _, _, service, protocol in completions:
                entry = per_protocol.setdefault(
                    protocol, {"count": 0, "seconds": 0.0}
                )
                entry["count"] += 1
                entry["seconds"] += service
            mean = sum(latencies) / len(latencies) if latencies else 0.0
            window_report = {
                "queries": len(completions) + rejections,
                "failed": 0,
                "rejected": rejections,
                "latency": {
                    "mean": mean,
                    "p50": _window_percentile(latencies, 0.50),
                    "p95": _window_percentile(latencies, 0.95),
                    "p99": _window_percentile(latencies, 0.99),
                },
                "per_protocol": {
                    protocol: {
                        "count": entry["count"],
                        "mean_predicted_seconds": entry["seconds"]
                        / entry["count"],
                    }
                    for protocol, entry in per_protocol.items()
                },
                "queue": {
                    "max_depth": queue_depth,
                    "mean_depth": float(queue_depth),
                },
            }
            for result in evaluate_slo(window_report, self.config.slo).results:
                burns[result.objective] = result.burn_rate
        # Queue depth is the leading indicator: it fires before enough
        # completions exist for the latency percentiles to show strain.
        burns["queue_depth"] = queue_depth / (
            self.config.queue_high_fraction * self.queue_capacity
        )
        return max(burns.values()), burns

    def _select_tenants(self, pressure: float) -> tuple[str, ...]:
        """The heaviest tenants by window arrival count (ties: name).

        The shed fraction scales with the overshoot past burn 1.0 —
        at burn 1.5 half the tenants brown out, at 2.0 all of them —
        with a floor of one tenant so entering brownout always acts.
        """
        counts: dict[str, int] = {}
        for _, tenant in self._arrivals:
            counts[tenant] = counts.get(tenant, 0) + 1
        if not counts:
            return ()
        fraction = min(1.0, max(0.0, pressure - 1.0))
        chosen = max(1, math.ceil(fraction * len(counts)))
        ranked = sorted(counts, key=lambda tenant: (-counts[tenant], tenant))
        return tuple(sorted(ranked[:chosen]))

    # ------------------------------------------------------------ actuation

    def _signal_dict(self, pressure: float, burns: dict, depth: int) -> dict:
        return {
            "burn": round(pressure, 9),
            "queue_depth": depth,
            "burns": {name: round(value, 9) for name, value in sorted(burns.items())},
        }

    def _record(
        self,
        now: float | None,
        action: str,
        signals: dict | None = None,
        detail=None,
        tenants: tuple[str, ...] | None = None,
        count: int | None = None,
    ) -> None:
        entry: dict = {"tick": self.tick_index, "action": action}
        if now is not None:
            entry["time"] = round(now, 9)
        if signals is not None:
            entry["signals"] = signals
        if detail is not None:
            entry["detail"] = detail
        if tenants is not None:
            entry["tenants"] = sorted(tenants)
        if count is not None:
            entry["count"] = count
        self.timeline.append(entry)

    def _flush_shedding(self, now: float | None) -> None:
        """One aggregated timeline entry per tick for shed/degraded jobs."""
        if self._tick_shed:
            self._record(
                now,
                "shed",
                tenants=tuple(self._tick_shed),
                count=sum(self._tick_shed.values()),
            )
            self._tick_shed = {}
        if self._tick_degraded:
            self._record(
                now,
                "degrade",
                tenants=tuple(self._tick_degraded),
                count=sum(self._tick_degraded.values()),
            )
            self._tick_degraded = {}

    def on_tick(self, now: float, queue_depth: int) -> list[tuple[str, object]]:
        """One control evaluation; returns engine-side actions to apply.

        Actions: ``("scale_up", workers)``, ``("scale_down", workers)``,
        ``("policy", name)``.  Escalation may fire several actuators in
        one tick (brownout, policy, scaling are independent levers);
        de-escalation relaxes exactly one lever per calm streak, in
        reverse order of harm (brownout first, scale-down last), so
        recovery never overshoots back into pressure.
        """
        self.tick_index += 1
        self._flush_shedding(now)
        pressure, burns = self._signals(now, queue_depth)
        self.last_burn = pressure
        cfg = self.config
        actions: list[tuple[str, object]] = []
        signals = self._signal_dict(pressure, burns, queue_depth)
        if pressure >= cfg.scale_up_burn:
            self.calm_ticks = 0
            if (
                cfg.shed_policy != "off"
                and pressure >= cfg.brownout_burn
                and not self.brownout_active
            ):
                tenants = self._select_tenants(pressure)
                if tenants:
                    self.brownout_active = True
                    self.brownouts += 1
                    self.shed_tenants = tenants
                    self._record(
                        now, "brownout_enter", signals, tenants=tenants
                    )
            if (
                cfg.pressure_policy is not None
                and pressure >= cfg.policy_switch_burn
                and self.policy != cfg.pressure_policy
            ):
                self.policy = cfg.pressure_policy
                self.policy_switches += 1
                self._record(
                    now, "policy_switch", signals, detail=cfg.pressure_policy
                )
                actions.append(("policy", cfg.pressure_policy))
            if self.workers < self.max_workers:
                self.workers += 1
                self.scale_ups += 1
                self._record(now, "scale_up", signals, detail=self.workers)
                actions.append(("scale_up", self.workers))
        elif pressure <= cfg.scale_down_burn:
            self.calm_ticks += 1
            if self.calm_ticks >= cfg.hysteresis_ticks:
                self.calm_ticks = 0
                if self.brownout_active:
                    self.brownout_active = False
                    self._record(
                        now, "brownout_exit", signals,
                        tenants=self.shed_tenants,
                    )
                    self.shed_tenants = ()
                elif self.policy != self.initial_policy:
                    self.policy = self.initial_policy
                    self.policy_switches += 1
                    self._record(
                        now, "policy_revert", signals,
                        detail=self.initial_policy,
                    )
                    actions.append(("policy", self.initial_policy))
                elif self.workers > self.min_workers:
                    self.workers -= 1
                    self.scale_downs += 1
                    self._record(
                        now, "scale_down", signals, detail=self.workers
                    )
                    actions.append(("scale_down", self.workers))
        else:
            # Inside the hysteresis band: neither escalate nor relax.
            self.calm_ticks = 0
        return actions

    # ------------------------------------------------------------ admission

    def _bump(self, tenant: str, kind: str) -> None:
        entry = self.per_tenant.setdefault(tenant, {"shed": 0, "degraded": 0})
        entry[kind] += 1

    def admission(self, job: QueryJob) -> tuple[str, int | None]:
        """Admission verdict for one arriving job.

        Returns ``("admit", None)``, ``("shed", retry_after_tick)``, or
        ``("degrade", k_prime)``.
        """
        cfg = self.config
        if (
            not self.brownout_active
            or cfg.shed_policy == "off"
            or job.tenant not in self.shed_tenants
        ):
            return ("admit", None)
        if cfg.shed_policy == "reject":
            self.shed += 1
            self._bump(job.tenant, "shed")
            self._tick_shed[job.tenant] = self._tick_shed.get(job.tenant, 0) + 1
            return ("shed", self.tick_index + cfg.retry_after_ticks)
        k_prime = (
            cfg.brownout_k if cfg.brownout_k is not None else max(1, job.k // 2)
        )
        if k_prime >= job.k:
            return ("admit", None)
        self.degraded += 1
        self._bump(job.tenant, "degraded")
        self._tick_degraded[job.tenant] = (
            self._tick_degraded.get(job.tenant, 0) + 1
        )
        return ("degrade", k_prime)

    # ------------------------------------------------------------ reporting

    @property
    def acted(self) -> bool:
        """Whether the loop ever actuated (sheds included).

        False means the run was byte-identical to ``control=None`` — the
        report then omits the control section entirely, which is what
        the regression fixtures pin.
        """
        return (
            bool(self.timeline)
            or bool(self._tick_shed)
            or bool(self._tick_degraded)
            or self.shed > 0
            or self.degraded > 0
        )

    def metric_counts(self) -> dict[str, int]:
        """The ``control.*`` counters the engine publishes under obs."""
        return {
            "control.ticks": self.tick_index,
            "control.scale_ups": self.scale_ups,
            "control.scale_downs": self.scale_downs,
            "control.policy_switches": self.policy_switches,
            "control.brownouts": self.brownouts,
            "control.shed": self.shed,
            "control.degraded": self.degraded,
        }

    def report_section(self, cluster_stats=None) -> dict:
        """The serving report's ``control`` section (see SERVING.md)."""
        self._flush_shedding(None)
        section = {
            "ticks": self.tick_index,
            "workers": {
                "initial": self.initial_workers,
                "final": self.workers,
                "min": self.min_workers,
                "max": self.max_workers,
            },
            "policy": {"initial": self.initial_policy, "final": self.policy},
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "policy_switches": self.policy_switches,
            "brownouts": self.brownouts,
            "shed": self.shed,
            "degraded": self.degraded,
            "per_tenant": {
                tenant: dict(counts)
                for tenant, counts in sorted(self.per_tenant.items())
            },
            "timeline": self.timeline,
        }
        if cluster_stats is not None:
            section["breakers"] = {
                "opens": cluster_stats.breaker_opens,
                "probes": cluster_stats.breaker_probes,
                "short_circuits": cluster_stats.breaker_short_circuits,
            }
        return section


# ---------------------------------------------------------------- breakers


class CircuitBreaker:
    """One (shard, replica)'s closed → open → half-open state machine.

    Time is the cluster cell's **fault sequence** (one step per
    sub-query the cell serves) — a pure function of the serving order,
    so breaker decisions replay identically under the serial and
    multiprocessing executors.  The breaker opens after
    ``failure_threshold`` consecutive failures; ``probe_after`` sequence
    steps later it half-opens and admits exactly one probe, whose
    outcome either closes it again or re-opens it from the probe's
    sequence number.
    """

    __slots__ = ("failure_threshold", "probe_after", "consecutive", "opened_at")

    def __init__(self, failure_threshold: int, probe_after: int) -> None:
        self.failure_threshold = failure_threshold
        self.probe_after = probe_after
        self.consecutive = 0
        self.opened_at: int | None = None

    @property
    def open(self) -> bool:
        return self.opened_at is not None

    def allow(self, seq: int) -> tuple[bool, bool]:
        """(allowed, is_probe) for an attempt at fault-sequence ``seq``."""
        if self.opened_at is None:
            return True, False
        if seq >= self.opened_at + self.probe_after:
            return True, True
        return False, False

    def record_failure(self, seq: int) -> bool:
        """Account one failure; True when the breaker (re-)opened."""
        if self.opened_at is not None:
            # A half-open probe failed: re-open from the probe's time.
            self.opened_at = seq
            return True
        self.consecutive += 1
        if self.consecutive >= self.failure_threshold:
            self.opened_at = seq
            return True
        return False

    def record_success(self) -> None:
        self.consecutive = 0
        self.opened_at = None


class BreakerBoard:
    """All of one cluster cell's circuit breakers, with accounting.

    Wraps the :class:`~repro.cluster.scatter.ClusterRunner` failover
    loop: an open breaker short-circuits a replica attempt *before* any
    transport traffic is spent on it, which is what caps retry
    amplification against a flapping replica.  Counters land in the
    cell's :class:`~repro.cluster.scatter.ClusterStats` (and, under
    obs, the ``control.breaker_*`` metrics).
    """

    def __init__(
        self,
        failure_threshold: int,
        probe_after: int,
        *,
        stats=None,
        obs: Observability | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if probe_after < 1:
            raise ConfigurationError("probe_after must be >= 1")
        self.failure_threshold = failure_threshold
        self.probe_after = probe_after
        self.stats = stats
        self.obs = obs
        self._breakers: dict[tuple[int, int], CircuitBreaker] = {}

    def _breaker(self, shard: int, replica: int) -> CircuitBreaker:
        key = (shard, replica)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(self.failure_threshold, self.probe_after)
            self._breakers[key] = breaker
        return breaker

    def allow(self, shard: int, replica: int, seq: int) -> bool:
        """Gate one replica attempt; accounts short-circuits and probes."""
        allowed, is_probe = self._breaker(shard, replica).allow(seq)
        if not allowed:
            if self.stats is not None:
                self.stats.breaker_short_circuits += 1
            if self.obs is not None:
                self.obs.count("control.breaker_short_circuits")
            return False
        if is_probe:
            if self.stats is not None:
                self.stats.breaker_probes += 1
            if self.obs is not None:
                self.obs.count("control.breaker_probes")
        return True

    def failure(self, shard: int, replica: int, seq: int) -> None:
        if self._breaker(shard, replica).record_failure(seq):
            if self.stats is not None:
                self.stats.breaker_opens += 1
            if self.obs is not None:
                self.obs.count("control.breaker_opens")

    def success(self, shard: int, replica: int) -> None:
        self._breaker(shard, replica).record_success()

    def state(self, shard: int, replica: int) -> str:
        """"closed" or "open" (probing is a property of the next seq)."""
        breaker = self._breakers.get((shard, replica))
        return "open" if breaker is not None and breaker.open else "closed"
