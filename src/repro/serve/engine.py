"""The deterministic discrete-event query-serving engine.

The engine runs in three phases:

1. **Plan** — a discrete-event simulation over the workload's arrivals:
   admission control, the bounded scheduler queue, and ``workers``
   simulated servers whose service times come from the
   :class:`~repro.serve.costs.CostModel` *prediction*, never from
   measurement.  The full timeline (start/finish per job, queue depth
   over time, rejections) is therefore a pure function of the workload
   seed and the serving configuration.
2. **Execute** — every planned job actually runs (real Paillier crypto,
   real R-tree search) through :mod:`repro.serve.pool`, bucketed by
   group so the serial and multiprocessing backends produce identical
   answers, cache hits, and pool statistics.
3. **Report** — timeline and outcomes merge into a
   :class:`ServingReport` whose :meth:`~ServingReport.to_dict` is
   byte-identical across runs (wall-clock throughput is carried
   separately and excluded by default).

Splitting simulated time from real execution is what makes the engine
both *reproducible* (the report never depends on host load or core
count) and *honest* (answers and communication bytes come from the real
protocol stack, faults and guards included).
"""

from __future__ import annotations

import hashlib
import heapq
import math
import time
from dataclasses import dataclass, field
from fractions import Fraction

from repro.core.config import PPGNNConfig
from repro.core.lsp import LSPServer
from repro.errors import (
    AdmissionRejectedError,
    BackpressureError,
    ConfigurationError,
)
from repro.obs import MetricsRegistry, Span, merge_span_groups
from repro.serve.costs import CostModel
from repro.serve.pool import (
    BucketStats,
    JobOutcome,
    LSPSpec,
    RunnerOptions,
    execute_buckets,
)
from repro.serve.scheduler import POLICIES, make_scheduler
from repro.serve.workload import QueryJob, Workload

_EXECUTORS = ("serial", "process")

# Event kinds, ordered so completions free workers first, control ticks
# observe the freed state, and only then are same-instant arrivals
# admitted (under whatever the tick just decided).
_COMPLETION = 0
_TICK = 1
_ARRIVAL = 2


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one serving run.

    ``workers`` is both the simulated server count and the execution
    bucket count; ``executor`` only chooses how the buckets run
    ("serial" in-process, "process" via multiprocessing) and never
    affects the report.
    """

    workers: int = 2
    executor: str = "serial"
    policy: str = "fifo"
    queue_capacity: int = 64
    tenant_quota: int | None = None
    nonce_pool: bool = True
    nonce_chunk: int = 64
    knn_cache_size: int | None = 256
    faults: object | None = None
    guard: bool = False
    deadline_seconds: float | None = None
    obs: bool = False
    cost_model: CostModel = field(default_factory=CostModel)
    cluster: object | None = None  # a repro.cluster.ClusterConfig, or None
    # Closed-loop overload control (a repro.serve.control.ControlConfig,
    # or None).  None is the hard default: without a controller the plan,
    # report, and answers digest are byte-identical to every pre-control
    # release, which the pinned regression fixtures enforce.
    control: object | None = None
    # Index substrate override for the serving replicas (one of
    # repro.gnn.engine.INDEX_KINDS, or None to keep whatever index the
    # LSP was built with).  Exact kinds keep the answers digest
    # byte-identical; approximate kinds mark every answer partial with
    # the engine's measured recall.
    index: str | None = None
    # Latency-histogram exemplars: record each bucket's worst observation
    # together with the span id of the job that produced it, so a flagged
    # p99 row in the trend dashboard resolves to a concrete trace
    # (`repro analyze --exemplars`).  Requires obs; off by default, and
    # off is byte-identical to every pre-exemplar release.
    exemplars: bool = False
    # Per-bucket trace ring size (None keeps the 4096-span default).
    # Evictions are published as `obs.trace.spans_dropped`.
    trace_capacity: int | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.executor not in _EXECUTORS:
            raise ConfigurationError(
                f"unknown executor {self.executor!r}; known: {list(_EXECUTORS)}"
            )
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"unknown policy {self.policy!r}; known: {list(POLICIES)}"
            )
        if self.queue_capacity < 1:
            raise ConfigurationError("queue_capacity must be >= 1")
        if self.tenant_quota is not None and self.tenant_quota < 1:
            raise ConfigurationError("tenant_quota must be >= 1 or None")
        if self.cluster is not None:
            shards = getattr(self.cluster, "shards", None)
            if not isinstance(shards, int):
                raise ConfigurationError(
                    "cluster must be a repro.cluster.ClusterConfig or None"
                )
            if self.executor == "process" and shards > self.workers:
                # Every one of the `workers` pool processes materializes
                # all `shards` LSP replicas and serves their sub-queries
                # serially — oversharding past the process count would
                # silently serialize with no parallelism to show for the
                # memory.  (The serial executor is explicitly a
                # one-process simulation, so it may shard freely.)
                raise ConfigurationError(
                    f"{shards} shards exceed {self.workers} workers under "
                    "the process executor; raise workers or lower shards"
                )
        if self.exemplars and not self.obs:
            raise ConfigurationError(
                "exemplars need the observability pipeline; pass obs=True"
            )
        if self.trace_capacity is not None:
            if not self.obs:
                raise ConfigurationError(
                    "trace_capacity only applies with obs=True"
                )
            if self.trace_capacity < 1:
                raise ConfigurationError("trace_capacity must be >= 1")
        if self.control is not None and not hasattr(
            self.control, "tick_seconds"
        ):
            raise ConfigurationError(
                "control must be a repro.serve.control.ControlConfig or None"
            )
        if self.index is not None:
            from repro.gnn.engine import APPROXIMATE_INDEX_KINDS, INDEX_KINDS

            if self.index not in INDEX_KINDS:
                raise ConfigurationError(
                    f"unknown index kind {self.index!r}; known: {list(INDEX_KINDS)}"
                )
            if self.cluster is not None and self.index in APPROXIMATE_INDEX_KINDS:
                # Shard merge assumes exact per-shard answers; an
                # approximate substrate would corrupt the coverage math.
                raise ConfigurationError(
                    f"approximate index {self.index!r} cannot back a cluster"
                )

    def runner_options(self, workload_seed: int) -> RunnerOptions:
        from dataclasses import replace

        faults = self.faults
        if faults is not None:
            # FaultPlan defaults its mappings to MappingProxyType, which
            # cannot cross a process boundary; plain dicts behave the same.
            faults = replace(faults, links=dict(faults.links), kill=dict(faults.kill))
        return RunnerOptions(
            nonce_pool=self.nonce_pool,
            nonce_seed=workload_seed,
            nonce_chunk=self.nonce_chunk,
            knn_cache_size=self.knn_cache_size,
            faults=faults,
            guard=self.guard,
            deadline_seconds=self.deadline_seconds,
            obs=self.obs,
            trace_capacity=self.trace_capacity,
            exemplars=self.exemplars,
            cluster=self.cluster,
            retry_budget=getattr(self.control, "retry_budget", None),
            breaker_failures=getattr(self.control, "breaker_failures", None),
            breaker_probe_after=getattr(self.control, "breaker_probe_after", 8),
        )


@dataclass(frozen=True, slots=True)
class PlannedJob:
    """One job's simulated timeline slot."""

    job: QueryJob
    arrival: float
    start: float
    finish: float
    predicted_seconds: float

    @property
    def latency(self) -> float:
        return self.finish - self.arrival


@dataclass(frozen=True, slots=True)
class RejectedJob:
    """One admission-control rejection (typed, never silent).

    ``retry_after`` is set only on controller sheds: the control tick at
    which the client may retry (the serialized form then grows a fifth
    element, so pre-control reports round-trip unchanged).
    """

    job_id: int
    tenant: str
    time: float
    error_type: str
    retry_after: int | None = None


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    The rank is ``ceil(n * fraction)`` computed *exactly* over rationals:
    the obvious float expression misranks whenever ``n * fraction`` lands
    epsilon above an integer (``100 * 0.55 == 55.000000000000007``, so a
    float ceil selects rank 56 instead of 55).  ``Fraction(str(fraction))``
    reads the decimal the caller wrote, not the nearest binary float.  The
    clamp to ``[1, n]`` covers fraction <= 0 and fraction >= 1 (p100 and
    anything epsilon beyond must select the last sample, never index n).
    """
    if not sorted_values:
        return 0.0
    n = len(sorted_values)
    exact = Fraction(n) * Fraction(str(fraction))
    rank = min(max(1, math.ceil(exact)), n)
    return sorted_values[rank - 1]


@dataclass
class ServingReport:
    """Everything one serving run produced, simulated and real.

    ``to_dict`` is the determinism contract: two runs with the same
    workload and config serialize identically.  ``wall_seconds`` (real
    elapsed execution time) and the derived ``wall_qps`` are the only
    nondeterministic fields and are excluded unless asked for.
    """

    workers: int
    policy: str
    executor: str
    queries: int
    completed: int
    failed: int
    rejected: int
    makespan_seconds: float
    throughput_qps: float
    latency_mean: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    max_queue_depth: int
    mean_queue_depth: float
    queue_depth_timeline: list[tuple[float, int]]
    per_protocol: dict[str, dict]
    per_tenant: dict[str, dict]
    cache: dict[str, float]
    pool: dict[str, float]
    retransmissions: int
    corrupt_rejected: int
    comm_bytes_total: int
    failures: list[tuple[int, str]]
    rejections: list[RejectedJob]
    answers_digest: str
    obs: dict | None = None
    cluster: dict | None = None
    control: dict | None = None
    outcomes: dict[int, JobOutcome] = field(default_factory=dict, repr=False)
    wall_seconds: float = 0.0

    @property
    def wall_qps(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def to_dict(self, include_wall: bool = False) -> dict:
        data = {
            "workers": self.workers,
            "policy": self.policy,
            "executor": self.executor,
            "queries": self.queries,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "makespan_seconds": round(self.makespan_seconds, 9),
            "throughput_qps": round(self.throughput_qps, 9),
            "latency": {
                "mean": round(self.latency_mean, 9),
                "p50": round(self.latency_p50, 9),
                "p95": round(self.latency_p95, 9),
                "p99": round(self.latency_p99, 9),
            },
            "queue": {
                "max_depth": self.max_queue_depth,
                "mean_depth": round(self.mean_queue_depth, 9),
                "timeline": [
                    [round(t, 9), depth] for t, depth in self.queue_depth_timeline
                ],
            },
            "per_protocol": self.per_protocol,
            "per_tenant": self.per_tenant,
            "cache": self.cache,
            "pool": self.pool,
            "transport": {
                "retransmissions": self.retransmissions,
                "corrupt_rejected": self.corrupt_rejected,
            },
            "comm_bytes_total": self.comm_bytes_total,
            "failures": [list(item) for item in self.failures],
            "rejections": [
                [r.job_id, r.tenant, round(r.time, 9), r.error_type]
                + ([r.retry_after] if r.retry_after is not None else [])
                for r in self.rejections
            ],
            "answers_digest": self.answers_digest,
        }
        if self.obs is not None:
            data["obs"] = self.obs
        if self.cluster is not None:
            data["cluster"] = self.cluster
        if self.control is not None:
            data["control"] = self.control
        if include_wall:
            data["wall_seconds"] = self.wall_seconds
            data["wall_qps"] = self.wall_qps
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ServingReport":
        """Rebuild a report from :meth:`to_dict` output.

        Lossless: ``from_dict(d).to_dict() == d`` for any ``d`` produced
        by :meth:`to_dict` (``outcomes`` is execution-local state and is
        never serialized).
        """
        latency = data["latency"]
        queue = data["queue"]
        transport = data["transport"]
        return cls(
            workers=data["workers"],
            policy=data["policy"],
            executor=data["executor"],
            queries=data["queries"],
            completed=data["completed"],
            failed=data["failed"],
            rejected=data["rejected"],
            makespan_seconds=data["makespan_seconds"],
            throughput_qps=data["throughput_qps"],
            latency_mean=latency["mean"],
            latency_p50=latency["p50"],
            latency_p95=latency["p95"],
            latency_p99=latency["p99"],
            max_queue_depth=queue["max_depth"],
            mean_queue_depth=queue["mean_depth"],
            queue_depth_timeline=[
                (t, depth) for t, depth in queue["timeline"]
            ],
            per_protocol=data["per_protocol"],
            per_tenant=data["per_tenant"],
            cache=data["cache"],
            pool=data["pool"],
            retransmissions=transport["retransmissions"],
            corrupt_rejected=transport["corrupt_rejected"],
            comm_bytes_total=data["comm_bytes_total"],
            failures=[tuple(item) for item in data["failures"]],
            rejections=[
                RejectedJob(
                    job_id=item[0],
                    tenant=item[1],
                    time=item[2],
                    error_type=item[3],
                    retry_after=item[4] if len(item) > 4 else None,
                )
                for item in data["rejections"]
            ],
            answers_digest=data["answers_digest"],
            obs=data.get("obs"),
            cluster=data.get("cluster"),
            control=data.get("control"),
            wall_seconds=data.get("wall_seconds", 0.0),
        )


class ServeEngine:
    """Runs one workload against one LSP under one serving configuration."""

    def __init__(
        self,
        lsp: LSPServer,
        base_config: PPGNNConfig,
        serve_config: ServeConfig | None = None,
    ) -> None:
        self.lsp = lsp
        self.base_config = base_config
        self.serve_config = serve_config or ServeConfig()
        self._controller = None
        if self.serve_config.cluster is not None and base_config.sanitize:
            raise ConfigurationError(
                "the cluster merge needs unsanitized per-shard answers; "
                "use a sanitize=False config (PPGNN-NAS) with cluster mode"
            )

    # ------------------------------------------------------------ phase 1

    def _predict(self, workload: Workload, job: QueryJob) -> float:
        from dataclasses import replace

        # A brownout-degraded job is both planned and executed at the
        # smaller k, so its predicted service time shrinks with it.
        k = job.brownout_k if job.brownout_k is not None else job.k
        config = (
            self.base_config
            if k == self.base_config.k
            else replace(self.base_config, k=k)
        )
        n = len(workload.group(job.group_id).locations)
        return self.serve_config.cost_model.predict_seconds(job.protocol, n, config)

    def plan(
        self, workload: Workload
    ) -> tuple[list[PlannedJob], list[RejectedJob], list[tuple[float, int]]]:
        """Simulate the full serving timeline (no crypto runs here)."""
        from dataclasses import replace

        cfg = self.serve_config
        spec = workload.spec
        scheduler = make_scheduler(cfg.policy, cfg.queue_capacity)
        predicted = {job.job_id: self._predict(workload, job) for job in workload.jobs}

        controller = None
        if cfg.control is not None:
            from repro.serve.control import OverloadController

            controller = OverloadController(
                cfg.control,
                workers=cfg.workers,
                policy=cfg.policy,
                queue_capacity=cfg.queue_capacity,
            )
        self._controller = controller

        events: list[tuple[float, int, int, QueryJob | None]] = []
        seq = 0
        closed = spec.arrival == "closed"
        if closed:
            initial = workload.jobs[: spec.concurrency]
            pending = list(workload.jobs[spec.concurrency :])
        else:
            initial, pending = workload.jobs, []
        for job in initial:
            heapq.heappush(events, (job.arrival_time, _ARRIVAL, seq, job))
            seq += 1

        free_workers = cfg.workers
        in_flight: dict[str, int] = {}
        planned: list[PlannedJob] = []
        rejected: list[RejectedJob] = []
        arrivals: dict[int, float] = {}
        depth_timeline: list[tuple[float, int]] = []
        # Count of outstanding non-tick events: the tick chain re-arms
        # itself only while real work remains, so the loop terminates.
        live = len(events)
        if controller is not None and live > 0:
            heapq.heappush(
                events, (cfg.control.tick_seconds, _TICK, seq, None)
            )
            seq += 1

        def chain_next(now: float) -> None:
            """Closed loop: a freed client issues the next job after thinking."""
            nonlocal seq, live
            if closed and pending:
                nxt = pending.pop(0)
                heapq.heappush(
                    events, (now + spec.think_seconds, _ARRIVAL, seq, nxt)
                )
                seq += 1
                live += 1

        def dispatch(now: float) -> None:
            nonlocal free_workers, seq, live
            while free_workers > 0:
                job = scheduler.pop()
                if job is None:
                    return
                free_workers -= 1
                finish = now + predicted[job.job_id]
                planned.append(
                    PlannedJob(
                        job=job,
                        arrival=arrivals[job.job_id],
                        start=now,
                        finish=finish,
                        predicted_seconds=predicted[job.job_id],
                    )
                )
                heapq.heappush(events, (finish, _COMPLETION, seq, job))
                seq += 1
                live += 1

        while events:
            now, kind, _, job = heapq.heappop(events)
            if kind == _TICK:
                # Control ticks are observers plus actuators: they never
                # touch the depth timeline (so an idle loop leaves the
                # plan byte-identical to control=None), and dispatch below
                # is a no-op unless the tick itself freed capacity —
                # outside ticks the queue is non-empty only when
                # free_workers == 0.
                for action, detail in controller.on_tick(now, len(scheduler)):
                    if action == "scale_up":
                        free_workers += 1
                    elif action == "scale_down":
                        # May go negative: a busy worker retires at its
                        # current job's completion instead of instantly.
                        free_workers -= 1
                    elif action == "policy":
                        entries = scheduler.drain()
                        scheduler = make_scheduler(detail, cfg.queue_capacity)
                        for queued, cost in sorted(
                            entries, key=lambda entry: entry[0].job_id
                        ):
                            scheduler.submit(queued, cost)
                dispatch(now)
                if live > 0:
                    heapq.heappush(
                        events,
                        (now + cfg.control.tick_seconds, _TICK, seq, None),
                    )
                    seq += 1
                continue
            live -= 1
            if kind == _COMPLETION:
                free_workers += 1
                in_flight[job.tenant] -= 1
                if controller is not None:
                    controller.on_completion(
                        now,
                        arrival=arrivals[job.job_id],
                        service=predicted[job.job_id],
                        protocol=job.protocol,
                    )
                chain_next(now)
            else:
                arrivals[job.job_id] = now
                if controller is not None:
                    controller.on_arrival(now, job.tenant)
                    decision, detail = controller.admission(job)
                    if decision == "shed":
                        rejected.append(
                            RejectedJob(
                                job_id=job.job_id,
                                tenant=job.tenant,
                                time=now,
                                error_type="OverloadSheddedError",
                                retry_after=detail,
                            )
                        )
                        # Shed before the queue: no in-flight slot, no
                        # queue entry, no latency sample — the audit trail
                        # is the typed rejection plus the control timeline.
                        chain_next(now)
                        dispatch(now)
                        depth_timeline.append((now, len(scheduler)))
                        continue
                    if decision == "degrade":
                        job = replace(job, brownout_k=detail)
                        predicted[job.job_id] = self._predict(workload, job)
                count = in_flight.get(job.tenant, 0)
                try:
                    if cfg.tenant_quota is not None and count >= cfg.tenant_quota:
                        raise AdmissionRejectedError(
                            job.tenant, count, cfg.tenant_quota
                        )
                    scheduler.submit(job, predicted[job.job_id])
                except BackpressureError as exc:
                    rejected.append(
                        RejectedJob(
                            job_id=job.job_id,
                            tenant=job.tenant,
                            time=now,
                            error_type=type(exc).__name__,
                        )
                    )
                    if controller is not None:
                        controller.on_rejection(now)
                    # The client sees an immediate rejection and moves on.
                    chain_next(now)
                else:
                    in_flight[job.tenant] = count + 1
            dispatch(now)
            depth_timeline.append((now, len(scheduler)))
        planned.sort(key=lambda p: (p.start, p.job.job_id))
        return planned, rejected, depth_timeline

    # ------------------------------------------------------------ phase 2

    def execute(
        self, workload: Workload, planned: list[PlannedJob]
    ) -> tuple[dict[int, JobOutcome], BucketStats, float]:
        """Run every planned job for real, bucketed by group."""
        cfg = self.serve_config
        buckets: list[list[QueryJob]] = [[] for _ in range(cfg.workers)]
        for slot in planned:
            buckets[slot.job.group_id % cfg.workers].append(slot.job)
        started = time.perf_counter()
        spec = LSPSpec.from_lsp(self.lsp)
        if cfg.index is not None:
            from dataclasses import replace as dc_replace

            spec = dc_replace(spec, index=cfg.index)
        outcomes, stats = execute_buckets(
            buckets,
            spec,
            self.base_config,
            cfg.runner_options(workload.spec.seed),
            workload.groups,
            processes=cfg.workers if cfg.executor == "process" else None,
        )
        return outcomes, stats, time.perf_counter() - started

    # ------------------------------------------------------------ phase 3

    def run(self, workload: Workload) -> ServingReport:
        """Plan, execute, and merge one workload into a serving report."""
        planned, rejected, depth_timeline = self.plan(workload)
        outcomes, stats, wall = self.execute(workload, planned)
        return self._report(
            workload, planned, rejected, depth_timeline, outcomes, stats, wall,
            controller=self._controller,
        )

    def _report(
        self,
        workload: Workload,
        planned: list[PlannedJob],
        rejected: list[RejectedJob],
        depth_timeline: list[tuple[float, int]],
        outcomes: dict[int, JobOutcome],
        stats: BucketStats,
        wall: float,
        controller=None,
    ) -> ServingReport:
        cfg = self.serve_config
        latencies = sorted(slot.latency for slot in planned)
        completed = [o for o in outcomes.values() if o.ok]
        failures = sorted(
            (o.job_id, o.error_type or "unknown")
            for o in outcomes.values()
            if not o.ok
        )

        per_protocol: dict[str, dict] = {}
        for slot in planned:
            outcome = outcomes.get(slot.job.job_id)
            entry = per_protocol.setdefault(
                slot.job.protocol,
                {"count": 0, "predicted_seconds": 0.0, "comm_bytes": 0},
            )
            entry["count"] += 1
            entry["predicted_seconds"] += slot.predicted_seconds
            if outcome is not None and outcome.ok:
                entry["comm_bytes"] += outcome.comm_bytes
        for entry in per_protocol.values():
            entry["mean_predicted_seconds"] = round(
                entry.pop("predicted_seconds") / entry["count"], 9
            )

        per_tenant: dict[str, dict] = {}
        for slot in planned:
            entry = per_tenant.setdefault(
                slot.job.tenant, {"completed": 0, "rejected": 0}
            )
            outcome = outcomes.get(slot.job.job_id)
            if outcome is not None and outcome.ok:
                entry["completed"] += 1
        for rejection in rejected:
            entry = per_tenant.setdefault(
                rejection.tenant, {"completed": 0, "rejected": 0}
            )
            entry["rejected"] += 1

        digest = hashlib.sha256()
        for job_id in sorted(outcomes):
            outcome = outcomes[job_id]
            entry = (
                f"{job_id}:{','.join(map(str, outcome.answer_ids))}"
                f":{outcome.comm_bytes}:{outcome.error_type}"
            )
            if outcome.partial:
                # Degraded answers must never digest-collide with full
                # ones; non-cluster outcomes are never partial, so the
                # historical digest formula is byte-identical.
                entry += (
                    f":partial:{outcome.coverage:.9f}"
                    f":{','.join(map(str, outcome.lost_shards))}"
                )
            if outcome.degraded_k is not None:
                # A brownout prefix of k answers must not collide with a
                # full answer that happens to share the prefix.
                entry += f":brownout:{outcome.degraded_k}"
            digest.update(entry.encode())

        makespan = max((slot.finish for slot in planned), default=0.0)
        depths = [depth for _, depth in depth_timeline]

        cluster_section = None
        if cfg.cluster is not None:
            from repro.cluster.scatter import ClusterStats

            cs = stats.cluster if stats.cluster is not None else ClusterStats()
            partials = [o for o in completed if o.partial]
            cluster_section = {
                "shards": cfg.cluster.shards,
                "replicas": cfg.cluster.replicas,
                "quorum": cfg.cluster.quorum,
                "subqueries": cs.subqueries,
                "failovers": cs.failovers,
                "hedges": cs.hedges,
                "hedge_wins": cs.hedge_wins,
                "partial_answers": cs.partial_answers,
                "shards_lost": cs.shards_lost,
                "load_imbalance": round(cs.load_imbalance(), 9),
                "coverage_min": round(
                    min((o.coverage for o in completed), default=1.0), 9
                ),
                "mean_expected_recall": round(
                    sum(o.expected_recall for o in partials) / len(partials), 9
                )
                if partials
                else 1.0,
                "per_shard": {
                    str(shard): {
                        "subqueries": cs.per_shard_subqueries.get(shard, 0),
                        "simulated_seconds": round(
                            cs.per_shard_seconds.get(shard, 0.0), 9
                        ),
                    }
                    for shard in range(cfg.cluster.shards)
                },
            }

        control_section = None
        breakers_acted = stats.cluster is not None and (
            stats.cluster.breaker_opens > 0
            or stats.cluster.breaker_probes > 0
            or stats.cluster.breaker_short_circuits > 0
        )
        if controller is not None and (controller.acted or breakers_acted):
            # Only a loop that actually actuated leaves a trace: an idle
            # controller keeps the report byte-identical to control=None.
            # (Breakers are control actuators too, even when the tick loop
            # itself never fired.)
            control_section = controller.report_section(stats.cluster)

        obs_payload = None
        if cfg.obs:
            registry = MetricsRegistry()
            if stats.metrics is not None:
                registry.merge_snapshot(stats.metrics)
            if control_section is not None:
                for name, value in controller.metric_counts().items():
                    registry.counter(name).inc(value)
            registry.counter("serve.jobs.completed").inc(len(completed))
            registry.counter("serve.jobs.failed").inc(len(failures))
            registry.counter("serve.jobs.rejected").inc(len(rejected))
            registry.gauge("serve.queue.max_depth").set(max(depths, default=0))
            # Bucket-local span ids collide across buckets; remap per group,
            # in bucket order, so the run-wide trace is deterministic.
            merged = merge_span_groups(
                [[Span.from_dict(item) for item in group] for group in stats.spans]
            )
            latency_hist = registry.histogram("serve.latency_seconds")
            if cfg.exemplars:
                # Same sorted observation order as the plain path (so the
                # histogram totals match bit for bit), but each sample
                # carries its job's merged `serve.job` span id as the
                # bucket exemplar.
                job_spans = {
                    span.attrs.get("job_id"): span.span_id
                    for span in merged
                    if span.name == "serve.job"
                }
                samples = sorted(
                    (
                        (slot.latency, job_spans.get(slot.job.job_id))
                        for slot in planned
                    ),
                    key=lambda s: (s[0], -1 if s[1] is None else s[1]),
                )
                for latency, span_id in samples:
                    latency_hist.observe(latency, exemplar=span_id)
                registry.counter("serve.exemplars.recorded").inc(
                    sum(1 for _, span_id in samples if span_id is not None)
                )
            else:
                for latency in latencies:
                    latency_hist.observe(latency)
            obs_payload = {
                "metrics": registry.snapshot().to_dict(),
                "spans": [span.to_dict() for span in merged],
            }

        return ServingReport(
            workers=cfg.workers,
            policy=cfg.policy,
            executor=cfg.executor,
            queries=len(workload.jobs),
            completed=len(completed),
            failed=len(failures),
            rejected=len(rejected),
            makespan_seconds=makespan,
            throughput_qps=len(completed) / makespan if makespan > 0 else 0.0,
            latency_mean=sum(latencies) / len(latencies) if latencies else 0.0,
            latency_p50=_percentile(latencies, 0.50),
            latency_p95=_percentile(latencies, 0.95),
            latency_p99=_percentile(latencies, 0.99),
            max_queue_depth=max(depths, default=0),
            mean_queue_depth=sum(depths) / len(depths) if depths else 0.0,
            queue_depth_timeline=depth_timeline,
            per_protocol={k: per_protocol[k] for k in sorted(per_protocol)},
            per_tenant={k: per_tenant[k] for k in sorted(per_tenant)},
            cache={
                "hits": stats.cache.hits,
                "misses": stats.cache.misses,
                "evictions": stats.cache.evictions,
                "hit_rate": round(stats.cache.hit_rate, 9),
            },
            pool={
                "precomputed": stats.pool.precomputed,
                "pooled": stats.pool.pooled,
                "dry": stats.pool.dry,
                "hit_rate": round(stats.pool.hit_rate, 9),
            },
            retransmissions=stats.retransmissions,
            corrupt_rejected=stats.corrupt_rejected,
            comm_bytes_total=sum(o.comm_bytes for o in completed),
            failures=failures,
            rejections=rejected,
            answers_digest=digest.hexdigest(),
            obs=obs_payload,
            cluster=cluster_section,
            control=control_section,
            outcomes=outcomes,
            wall_seconds=wall,
        )
