"""Execution backends: per-bucket runners, serial or multiprocessing.

Jobs are routed to buckets by ``group_id % workers``, so every query of a
group executes in the same bucket, in planned start order.  A bucket is a
self-contained serving cell: its own LSP replica, its own session table,
its own shared nonce-pool registry and kNN result cache.  Because the
bucket assignment and the within-bucket order depend only on the plan —
never on the execution backend — the serial and multiprocessing executors
produce *identical* outcomes and cache/pool statistics; processes only
shrink wall-clock time.

:class:`LSPSpec` is the picklable recipe a worker process uses to rebuild
its LSP replica (POIs, space, sanitation knobs).  Real crypto runs here —
the simulated clock of :mod:`repro.serve.engine` never consults these
timings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.core.common import group_keypair
from repro.core.config import PPGNNConfig
from repro.core.lsp import LSPServer
from repro.core.opt import optimal_omega
from repro.core.session import QuerySession
from repro.crypto.noncepool import NoncePoolRegistry, PoolStats
from repro.datasets.poi import POI
from repro.errors import ReproError
from repro.geometry.space import LocationSpace
from repro.guard.guard import ProtocolGuard
from repro.index.base import IndexCounters
from repro.metrics.quality import estimate_brownout_quality
from repro.obs import MetricsRegistry, MetricsSnapshot, Observability, Tracer
from repro.partition.solver import solve_partition
from repro.serve.cache import CacheStats, KnnLRUCache
from repro.serve.workload import GroupProfile, QueryJob
from repro.transport.channel import FaultyChannel
from repro.transport.faults import FaultPlan
from repro.transport.retry import RetryPolicy
from repro.transport.session import ResilientSession

if TYPE_CHECKING:
    from repro.cluster.scatter import ClusterRunner, ClusterStats

_PROTOCOL_INDEX = {"ppgnn": 0, "ppgnn-opt": 1, "naive": 2}


@dataclass(frozen=True)
class LSPSpec:
    """Everything needed to rebuild an equivalent LSP in another process."""

    pois: tuple[POI, ...]
    space: LocationSpace
    aggregate_name: str = "sum"
    gamma: float = 0.05
    eta: float = 0.2
    phi: float = 0.1
    sanitation_samples: int | None = None
    #: Index substrate behind the replica's kGNN engine (see
    #: :data:`repro.gnn.engine.INDEX_KINDS`).
    index: str = "rtree"

    @classmethod
    def from_lsp(cls, lsp: LSPServer) -> "LSPSpec":
        return cls(
            pois=tuple(lsp.engine.pois),
            space=lsp.space,
            aggregate_name=lsp.aggregate.name,
            gamma=lsp.gamma,
            eta=lsp.eta,
            phi=lsp.phi,
            sanitation_samples=lsp.sanitation_samples,
            index=getattr(lsp.engine, "index_kind", "rtree"),
        )

    def build(self) -> LSPServer:
        return LSPServer(
            pois=list(self.pois),
            space=self.space,
            aggregate_name=self.aggregate_name,
            gamma=self.gamma,
            eta=self.eta,
            phi=self.phi,
            sanitation_samples=self.sanitation_samples,
            index=self.index,
        )


@dataclass(frozen=True)
class RunnerOptions:
    """Picklable per-bucket execution knobs (a slice of ``ServeConfig``)."""

    nonce_pool: bool = True
    nonce_seed: int = 0
    nonce_chunk: int = 64
    knn_cache_size: int | None = 256
    faults: FaultPlan | None = None
    guard: bool = False
    deadline_seconds: float | None = None
    obs: bool = False
    # Per-bucket trace ring size (None keeps the Tracer default).  The
    # bucket publishes evictions as ``obs.trace.spans_dropped`` so trend
    # and exemplar data loss is visible instead of silent.
    trace_capacity: int | None = None
    # Wrap each job in a ``serve.job`` root span (carrying its job id) so
    # latency-histogram exemplars can link a bucket back to the concrete
    # trace.  Off by default: the no-exemplar trace is byte-identical to
    # every prior release.
    exemplars: bool = False
    cluster: object | None = None  # a repro.cluster.ClusterConfig, or None
    # Overload-control knobs (see repro.serve.control).  The defaults
    # reproduce the pre-control behaviour bit for bit.
    retry_budget: int | None = None
    breaker_failures: int | None = None
    breaker_probe_after: int = 8


@dataclass(frozen=True, slots=True)
class JobOutcome:
    """What one executed job produced (picklable, wall-time-free).

    ``answer_ids`` and ``comm_bytes`` are the determinism-bearing fields:
    they must match a direct :class:`~repro.core.session.QuerySession` run
    of the same job byte for byte.
    """

    job_id: int
    tenant: str
    group_id: int
    protocol: str
    ok: bool
    answer_ids: tuple[int, ...] = ()
    comm_bytes: int = 0
    error_type: str | None = None
    error: str | None = None
    # Cluster degradation provenance.  The defaults describe every
    # non-cluster outcome, so the digest formula (and the pinned
    # regression fixtures) are untouched when ``cluster=None``.
    partial: bool = False
    coverage: float = 1.0
    lost_shards: tuple[int, ...] = ()
    expected_recall: float = 1.0
    # Brownout provenance: the smaller k this job actually executed with
    # (None = served at full k), and the quality-scored PartialAnswer a
    # degraded or shard-partial job returned.
    degraded_k: int | None = None
    partial_answer: object | None = None


@dataclass
class BucketStats:
    """Shared-resource counters of one bucket, merged into the report.

    When the bucket ran with observability on, ``metrics`` carries its
    registry snapshot and ``spans`` its trace as one span *group* (a tuple
    of span dicts with bucket-local ids).  Merging keeps groups separate —
    the engine remaps ids per group when it assembles the run-wide trace —
    and always happens in bucket order, so serial and multiprocessing
    executors produce identical merged observations.
    """

    pool: PoolStats = field(default_factory=PoolStats)
    cache: CacheStats = field(default_factory=CacheStats)
    retransmissions: int = 0
    corrupt_rejected: int = 0
    metrics: MetricsSnapshot | None = None
    spans: tuple = ()
    cluster: ClusterStats | None = None

    def merge(self, other: "BucketStats") -> None:
        self.pool.merge(other.pool)
        self.cache.merge(other.cache)
        self.retransmissions += other.retransmissions
        self.corrupt_rejected += other.corrupt_rejected
        if other.cluster is not None:
            if self.cluster is None:
                from repro.cluster.scatter import ClusterStats

                self.cluster = ClusterStats()
            self.cluster.merge(other.cluster)
        if other.metrics is not None:
            registry = MetricsRegistry()
            if self.metrics is not None:
                registry.merge_snapshot(self.metrics)
            registry.merge_snapshot(other.metrics)
            self.metrics = registry.snapshot()
        self.spans = self.spans + other.spans


class BucketRunner:
    """Executes one bucket's jobs against one LSP replica.

    Sessions are keyed ``(group_id, protocol, k)`` — a group that issues
    the same query shape repeatedly reuses one key pair and one session,
    the amortized-setup model of :class:`QuerySession`.  All sessions of a
    bucket share the runner's nonce-pool registry (per-public-key pools)
    and its LSP-side kNN cache.
    """

    def __init__(
        self,
        lsp: LSPServer,
        base_config: PPGNNConfig,
        options: RunnerOptions,
    ) -> None:
        self.lsp = lsp
        self.base_config = base_config
        self.options = options
        self.registry = (
            NoncePoolRegistry(seed=options.nonce_seed, chunk=options.nonce_chunk)
            if options.nonce_pool
            else None
        )
        if options.knn_cache_size is not None and options.cluster is None:
            lsp.engine.set_knn_cache(KnnLRUCache(options.knn_cache_size))
        self._sessions: dict[tuple[int, str, int], QuerySession] = {}
        self.obs = None
        if options.obs:
            self.obs = (
                Observability(tracer=Tracer(capacity=options.trace_capacity))
                if options.trace_capacity is not None
                else Observability()
            )
        self._guard = (
            ProtocolGuard(deadline_seconds=options.deadline_seconds, obs=self.obs)
            if options.guard
            else None
        )
        self._cluster: ClusterRunner | None = None
        if options.cluster is not None:
            # The cell becomes a scatter–gather cluster: its database is
            # partitioned across shard LSPs (the cell's own LSP is never
            # queried directly) while nonce pools, guard, observability,
            # and message-level faults thread through unchanged.  Imported
            # lazily: repro.cluster reaches back into repro.serve for the
            # cost model, so a module-level import would be circular.
            from repro.cluster.scatter import ClusterRunner

            self._cluster = ClusterRunner(
                lsp,
                base_config,
                options.cluster,
                transport_faults=options.faults,
                guard=self._guard,
                obs=self.obs,
                registry=self.registry,
                top_up=self._top_up_pool if self.registry is not None else None,
                deadline_seconds=options.deadline_seconds,
                knn_cache_size=options.knn_cache_size,
                retry_budget=options.retry_budget,
                breaker_failures=options.breaker_failures,
                breaker_probe_after=options.breaker_probe_after,
            )

    # ------------------------------------------------------------- sessions

    def _session(self, job: QueryJob, config: PPGNNConfig) -> QuerySession:
        key = (job.group_id, job.protocol, job.k)
        session = self._sessions.get(key)
        if session is not None:
            return session
        kwargs = dict(
            lsp=self.lsp,
            config=config,
            protocol=job.protocol,
            seed=job.seed,
            max_history=1,
            guard=self._guard,
            obs=self.obs,
        )
        if self.options.faults is not None:
            # One independent fault stream per session, derived from the
            # plan seed and the session key so replays are exact.
            plan = replace(
                self.options.faults,
                seed=self.options.faults.seed * 7919
                + job.group_id * 31
                + _PROTOCOL_INDEX[job.protocol] * 7
                + job.k,
            )
            if self.options.retry_budget is not None:
                kwargs["policy"] = RetryPolicy(
                    retry_budget=self.options.retry_budget
                )
            session = ResilientSession(channel=FaultyChannel(plan), **kwargs)
        else:
            session = QuerySession(**kwargs)
        if self.registry is not None:
            keypair = group_keypair(config)
            # The bucket owns the group's key pair, so its pool refills
            # may run the half-width CRT-split path.
            session.nonce_pool = self.registry.pool_for(
                keypair.public_key, keypair.secret_key
            )
        self._sessions[key] = session
        return session

    def _top_up_pool(self, job: QueryJob, config: PPGNNConfig, n: int) -> None:
        """Precompute exactly the factors the next round will spend."""
        keypair = group_keypair(config)
        if job.protocol == "naive":
            self.registry.ensure(keypair.public_key, config.delta, s=1)
            return
        delta_prime = solve_partition(n, config.d, config.delta).delta_prime
        if job.protocol == "ppgnn":
            self.registry.ensure(keypair.public_key, delta_prime, s=1)
        else:
            omega = optimal_omega(delta_prime)
            width = math.ceil(delta_prime / omega)
            self.registry.ensure(keypair.public_key, width, s=1)
            self.registry.ensure(keypair.public_key, omega, s=2)

    # ------------------------------------------------------------ execution

    @staticmethod
    def _effective_job(job: QueryJob) -> tuple[QueryJob, int | None]:
        """The job as it will actually execute under a brownout.

        A controller-degraded job runs verbatim at the smaller
        ``brownout_k`` — same group, same seed — so its answer is an
        exact *prefix* of the requested top-k, not an approximation.
        """
        if job.brownout_k is not None and job.brownout_k < job.k:
            return replace(job, k=job.brownout_k), job.brownout_k
        return job, None

    def _approximate_quality(self):
        """The engine's measured recall, when it serves approximate answers."""
        engine = self.lsp.engine
        if not getattr(engine, "is_approximate", False):
            return None
        return getattr(engine, "recall_estimate", None)

    def _brownout_answer(self, job: QueryJob, answer_ids, degraded_k: int):
        """(PartialAnswer, quality) for a brownout-degraded answer."""
        from repro.cluster.merge import PartialAnswer

        quality = estimate_brownout_quality(job.k, degraded_k)
        return (
            PartialAnswer(
                answer_ids=answer_ids,
                covered_shards=(),
                lost_shards=(),
                coverage=quality.coverage,
                quality=quality,
            ),
            quality,
        )

    def run_job(self, job: QueryJob, group: GroupProfile) -> JobOutcome:
        if self.obs is not None and self.options.exemplars:
            # One root span per job, stamped with the job id: the engine's
            # latency histogram records this span's (merged) id as the
            # bucket exemplar, closing the loop from a flagged p99 row to
            # a renderable trace.
            with self.obs.span("serve.job", job_id=job.job_id):
                return self._execute_job(job, group)
        return self._execute_job(job, group)

    def _execute_job(self, job: QueryJob, group: GroupProfile) -> JobOutcome:
        if self._cluster is not None:
            return self._run_cluster_job(job, group)
        effective, degraded_k = self._effective_job(job)
        config = (
            self.base_config
            if effective.k == self.base_config.k
            else replace(self.base_config, k=effective.k)
        )
        session = self._session(effective, config)
        if self.registry is not None:
            self._top_up_pool(effective, config, len(group.locations))
        # Pin the sanitation sampler to the job seed: a repeat re-runs the
        # exact round (cache-servable), and bucket order alone decides the
        # stream — identical under serial and multiprocessing execution.
        self.lsp.reset_rng(job.seed)
        try:
            result = session.query(group.locations, seed=job.seed)
        except ReproError as exc:
            return JobOutcome(
                job_id=job.job_id,
                tenant=job.tenant,
                group_id=job.group_id,
                protocol=job.protocol,
                ok=False,
                error_type=type(exc).__name__,
                error=str(exc),
                degraded_k=degraded_k,
            )
        approx = self._approximate_quality()
        if degraded_k is None and approx is None:
            return JobOutcome(
                job_id=job.job_id,
                tenant=job.tenant,
                group_id=job.group_id,
                protocol=job.protocol,
                ok=True,
                answer_ids=result.answer_ids,
                comm_bytes=result.report.total_comm_bytes,
            )
        from repro.cluster.merge import PartialAnswer

        if degraded_k is None:
            # Approximate-index answer at full k: exact within the candidate
            # set, marked partial with the engine's measured recall so it
            # can never masquerade (or digest) as an exact answer.
            quality = approx
        else:
            quality = estimate_brownout_quality(job.k, degraded_k)
            if approx is not None:
                # Brownout and approximate recall are independent
                # degradations (which k positions vs. which candidates),
                # so they compose multiplicatively — same rule as the
                # brownout-on-shard-partial case in the cluster path.
                from repro.metrics.quality import PartialAnswerQuality

                quality = PartialAnswerQuality(
                    coverage=quality.coverage * approx.coverage,
                    expected_recall=quality.expected_recall
                    * approx.expected_recall,
                    guaranteed_recall=quality.guaranteed_recall
                    * approx.guaranteed_recall,
                )
        partial_answer = PartialAnswer(
            answer_ids=result.answer_ids,
            covered_shards=(),
            lost_shards=(),
            coverage=quality.coverage,
            quality=quality,
        )
        return JobOutcome(
            job_id=job.job_id,
            tenant=job.tenant,
            group_id=job.group_id,
            protocol=job.protocol,
            ok=True,
            answer_ids=result.answer_ids,
            comm_bytes=result.report.total_comm_bytes,
            partial=True,
            coverage=quality.coverage,
            expected_recall=quality.expected_recall,
            degraded_k=degraded_k,
            partial_answer=partial_answer,
        )

    def _run_cluster_job(self, job: QueryJob, group: GroupProfile) -> JobOutcome:
        """Scatter–gather path: full answer, typed partial, or typed failure."""
        effective, degraded_k = self._effective_job(job)
        try:
            scattered = self._cluster.run_job(effective, group)
        except ReproError as exc:
            return JobOutcome(
                job_id=job.job_id,
                tenant=job.tenant,
                group_id=job.group_id,
                protocol=job.protocol,
                ok=False,
                error_type=type(exc).__name__,
                error=str(exc),
                degraded_k=degraded_k,
            )
        partial = scattered.partial
        expected_recall = scattered.expected_recall
        partial_answer = scattered.partial_answer
        if degraded_k is not None:
            # A brownout stacked on a (possibly shard-partial) scatter:
            # the k-prefix ratio and the data-coverage recall compose
            # multiplicatively, since the two degradations are
            # independent (which k positions are served vs. which POIs
            # were reachable).
            from repro.cluster.merge import PartialAnswer

            quality = estimate_brownout_quality(job.k, degraded_k)
            partial = True
            expected_recall = scattered.expected_recall * quality.expected_recall
            base = scattered.partial_answer
            if base is not None:
                from repro.metrics.quality import PartialAnswerQuality

                combined = PartialAnswerQuality(
                    coverage=base.quality.coverage * quality.coverage,
                    expected_recall=expected_recall,
                    guaranteed_recall=base.quality.guaranteed_recall
                    * quality.guaranteed_recall,
                )
                partial_answer = PartialAnswer(
                    answer_ids=base.answer_ids,
                    covered_shards=base.covered_shards,
                    lost_shards=base.lost_shards,
                    coverage=base.coverage,
                    quality=combined,
                )
            else:
                partial_answer, _ = self._brownout_answer(
                    job, scattered.answer_ids, degraded_k
                )
        return JobOutcome(
            job_id=job.job_id,
            tenant=job.tenant,
            group_id=job.group_id,
            protocol=job.protocol,
            ok=True,
            answer_ids=scattered.answer_ids,
            comm_bytes=scattered.comm_bytes,
            partial=partial,
            coverage=scattered.coverage,
            lost_shards=scattered.lost_shards,
            expected_recall=expected_recall,
            degraded_k=degraded_k,
            partial_answer=partial_answer,
        )

    def stats(self) -> BucketStats:
        stats = BucketStats()
        if self.registry is not None:
            stats.pool.merge(self.registry.stats)
        cache = self.lsp.engine.knn_cache
        if cache is not None:
            stats.cache.merge(cache.stats)
        for session in self._sessions.values():
            transport = getattr(session, "transport", None)
            if transport is not None:
                stats.retransmissions += transport.stats.retransmissions
                stats.corrupt_rejected += transport.stats.corrupt_rejected
        if self._cluster is not None:
            stats.cluster = self._cluster.stats
            stats.cache.merge(self._cluster.cache_stats())
            for transport in self._cluster.transports():
                stats.retransmissions += transport.stats.retransmissions
                stats.corrupt_rejected += transport.stats.corrupt_rejected
        if self.obs is not None:
            # Shared-resource counters are published once, at bucket close,
            # so repeats and evictions are already folded in.
            self.obs.count("serve.cache.hits", stats.cache.hits)
            self.obs.count("serve.cache.misses", stats.cache.misses)
            self.obs.count("serve.pool.pooled", stats.pool.pooled)
            self.obs.count("crypto.fastexp.windowed", stats.pool.windowed)
            self.obs.count("crypto.fastexp.crt_split", stats.pool.crt_split)
            self.obs.count("crypto.fastexp.fast_muls", stats.pool.fast_muls)
            self.obs.count("crypto.fastexp.dry", stats.pool.dry)
            index_totals = IndexCounters()
            engines = [self.lsp.engine]
            if self._cluster is not None:
                engines.extend(s.engine for s in self._cluster.shard_lsps)
            for engine in engines:
                counters = getattr(engine, "index_counters", None)
                if counters is not None:
                    index_totals.merge(counters)
            self.obs.count("index.queries", index_totals.queries)
            self.obs.count("index.nodes_visited", index_totals.nodes_visited)
            self.obs.count("index.candidates_scored", index_totals.candidates_scored)
            if self.obs.tracer.dropped:
                # Ring-buffer evictions mean the exported trace (and any
                # exemplar span ids pointing into it) is incomplete;
                # publish the loss so `repro analyze` can warn.
                self.obs.count(
                    "obs.trace.spans_dropped", self.obs.tracer.dropped
                )
            stats.metrics = self.obs.snapshot()
            stats.spans = (
                tuple(span.to_dict() for span in self.obs.tracer.spans()),
            )
        return stats


def _run_bucket(payload) -> tuple[list[JobOutcome], BucketStats]:
    """Worker entry point: rebuild the cell, run its jobs in order."""
    spec, base_config, options, groups, jobs = payload
    runner = BucketRunner(spec.build(), base_config, options)
    outcomes = [runner.run_job(job, groups[job.group_id]) for job in jobs]
    return outcomes, runner.stats()


def execute_buckets(
    buckets: list[list[QueryJob]],
    spec: LSPSpec,
    base_config: PPGNNConfig,
    options: RunnerOptions,
    groups: tuple[GroupProfile, ...],
    processes: int | None = None,
) -> tuple[dict[int, JobOutcome], BucketStats]:
    """Run every bucket, serially or across ``processes`` workers.

    Returns outcomes keyed by job id plus bucket stats merged in bucket
    order — both independent of the backend, by construction.
    """
    payloads = [
        (spec, base_config, options, groups, jobs) for jobs in buckets if jobs
    ]
    if processes is not None and processes > 1 and len(payloads) > 1:
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context("spawn")
        with ctx.Pool(min(processes, len(payloads))) as pool:
            results = pool.map(_run_bucket, payloads)
    else:
        results = [_run_bucket(payload) for payload in payloads]
    outcomes: dict[int, JobOutcome] = {}
    totals = BucketStats()
    for bucket_outcomes, stats in results:
        for outcome in bucket_outcomes:
            outcomes[outcome.job_id] = outcome
        totals.merge(stats)
    return outcomes, totals
