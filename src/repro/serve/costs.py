"""Predicted service times for the discrete-event serving clock.

The serving engine's simulated timeline must be *deterministic*: two runs
with the same seed have to produce byte-identical reports, regardless of
how many worker processes executed the crypto or how loaded the host was.
Measured wall time can never satisfy that, so the event clock advances by
**predicted** service times instead — nominal per-operation costs times
the exact homomorphic operation counts each protocol round performs.

The operation counts mirror the runners precisely (the same arithmetic
:mod:`repro.analysis.costmodel` uses for bytes):

- PPGNN: a delta'-long indicator encryption, an ``m x delta'`` private
  selection (Theorem 3.1), delta' per-candidate kGNN queries, and m
  answer decryptions.
- PPGNN-OPT: the two small indicators (inner at eps_1, outer at eps_2),
  the padded per-block selections plus the omega-wide nested selection
  at eps_2, and a nested (two-stage) answer decryption.
- Naive: a delta-long indicator, an ``m x delta`` selection, delta kGNN
  queries, and m decryptions.

Nominal seconds are calibrated once for the 512-bit reference key and
scale cubically with key size — modular exponentiation under an l-bit
modulus costs Theta(l^3) with schoolbook arithmetic, which is what both
CPython and the paper's GMP baseline effectively pay at these sizes.
Operations at eps_2 work modulo N^3 instead of N^2 and are weighted by
the same cube of the modulus-length ratio, i.e. ``(3/2)^3``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.costmodel import _answer_integers
from repro.core.config import PPGNNConfig
from repro.core.opt import optimal_omega
from repro.errors import ConfigurationError
from repro.partition.solver import solve_partition

#: Key size the nominal per-op seconds are calibrated against.
REFERENCE_KEYSIZE = 512

#: Exponent of the keysize scaling law for modular-exponentiation work.
_KEYSIZE_POWER = 3

#: Weight of an eps_2 (s=2) operation relative to eps_1: the modulus grows
#: from 2l to 3l bits, so modexp work grows by (3/2)^3.
_LEVEL2_WEIGHT = (3 / 2) ** _KEYSIZE_POWER


@dataclass(frozen=True, slots=True)
class CostModel:
    """Nominal seconds per primitive at :data:`REFERENCE_KEYSIZE` bits.

    The defaults are rough pure-Python magnitudes; their absolute scale
    only stretches the simulated timeline uniformly, so relative protocol
    comparisons (and determinism) hold for any positive values.
    """

    encryption_seconds: float = 2.0e-3
    decryption_seconds: float = 2.0e-3
    scalar_mul_seconds: float = 1.0e-3
    kgnn_seconds: float = 2.0e-4

    def __post_init__(self) -> None:
        for name in (
            "encryption_seconds",
            "decryption_seconds",
            "scalar_mul_seconds",
            "kgnn_seconds",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    def _scale(self, keysize: int) -> float:
        return (keysize / REFERENCE_KEYSIZE) ** _KEYSIZE_POWER

    def predict_seconds(self, protocol: str, n: int, config: PPGNNConfig) -> float:
        """Predicted service seconds of one round of ``protocol`` for n users.

        Pure function of (protocol, n, config) — the determinism anchor of
        the serving engine's simulated clock.
        """
        scale = self._scale(config.keysize)
        m = _answer_integers(config.keysize, config.k)
        if protocol == "ppgnn":
            delta_prime = solve_partition(n, config.d, config.delta).delta_prime
            crypto = (
                delta_prime * self.encryption_seconds
                + m * self.decryption_seconds
                + m * delta_prime * self.scalar_mul_seconds
            )
            kgnn = delta_prime * self.kgnn_seconds
        elif protocol == "ppgnn-opt":
            delta_prime = solve_partition(n, config.d, config.delta).delta_prime
            omega = optimal_omega(delta_prime)
            width = math.ceil(delta_prime / omega)
            crypto = (
                width * self.encryption_seconds
                + omega * self.encryption_seconds * _LEVEL2_WEIGHT
                + m * (self.decryption_seconds * _LEVEL2_WEIGHT + self.decryption_seconds)
                + m * width * omega * self.scalar_mul_seconds
                + m * omega * self.scalar_mul_seconds * _LEVEL2_WEIGHT
            )
            kgnn = delta_prime * self.kgnn_seconds
        elif protocol == "naive":
            crypto = (
                config.delta * self.encryption_seconds
                + m * self.decryption_seconds
                + m * config.delta * self.scalar_mul_seconds
            )
            kgnn = config.delta * self.kgnn_seconds
        else:
            raise ConfigurationError(f"unknown protocol {protocol!r}")
        return crypto * scale + kgnn

    def predict_ops(
        self, protocol: str, n: int, config: PPGNNConfig
    ) -> dict[str, int]:
        """Exact per-round operation counts of one honest protocol round.

        Same arithmetic as :meth:`predict_seconds`, but returning the raw
        counts — the numbers a traced round's span attributes must match
        exactly (the observability acceptance check).  Only the counts
        that are a pure function of (protocol, n, config) are included:
        encryptions, decryptions, and kGNN queries.  Scalar multiplications
        are *data-dependent* (``hom_dot`` skips zero scalars, and how many
        indicator slots are zero depends on the placement draw), so they
        are deliberately absent rather than approximately present.
        """
        m = _answer_integers(config.keysize, config.k)
        if protocol == "ppgnn":
            delta_prime = solve_partition(n, config.d, config.delta).delta_prime
            return {
                "encryptions": delta_prime,
                "decryptions": m,
                "kgnn_queries": delta_prime,
            }
        if protocol == "ppgnn-opt":
            delta_prime = solve_partition(n, config.d, config.delta).delta_prime
            omega = optimal_omega(delta_prime)
            width = math.ceil(delta_prime / omega)
            return {
                "encryptions": width + omega,
                "decryptions": 2 * m,
                "kgnn_queries": delta_prime,
            }
        if protocol == "naive":
            return {
                "encryptions": config.delta,
                "decryptions": m,
                "kgnn_queries": config.delta,
            }
        raise ConfigurationError(f"unknown protocol {protocol!r}")
