"""Shared result caches for the serving engine.

The LSP's dominant *plaintext* cost under serving load is the per-candidate
kGNN call (delta' R-tree searches per query).  Served traffic contains
verbatim repeats — clients re-issuing an identical query after a dropped
answer, hot "where shall we meet" queries refreshed by the same group —
and those repeats re-run the exact same delta' candidate searches.

:class:`KnnLRUCache` memoizes kGNN results under an *exact* key:

    (tree version, algorithm, aggregate, k, query rect, locations)

Exactness is the correctness contract: a hit is returned only for a query
byte-identical to the one that produced the entry, so cached results are
always identical to uncached calls (property-tested under random eviction
pressure).  The tree version in the key makes every entry self-invalidate
when the database mutates — the dynamic-database story keeps working.
Approximate reuse (quantized rects, candidate supersets) is future work;
see SERVING.md.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Sequence

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache's lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another cache's counters into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions


#: Distinguishes "key absent" from "None was cached" — ``get(key)``
#: returning the default must not shadow a legitimately stored None.
_MISSING = object()


class KnnLRUCache:
    """A bounded least-recently-used cache with hit/miss counters."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Hashable) -> Any | None:
        """The cached value, refreshed to most-recent, or None on a miss.

        A stored None counts as a hit: treating it as a miss would both
        skew the hit rate and pin the entry at its old LRU position, so a
        None entry would poison its slot until evicted.
        """
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def store(self, key: Hashable, value: Any) -> None:
        """Insert or replace a value, evicting the LRU entry if full.

        Replacing an existing key refreshes its recency and never evicts
        (the size does not grow).
        """
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = value

    def clear(self) -> None:
        self._entries.clear()


#: The serving engine's cache is LRU first and kNN-specific second; some
#: call sites (and the serving docs) use the generic name.
LRUCache = KnnLRUCache


def knn_cache_key(
    version: int,
    algorithm: str,
    aggregate: str,
    k: int,
    locations: Sequence[Point],
) -> tuple:
    """The exact-match cache key of one kGNN call.

    Carries the query rect (the MBR of the group locations) ahead of the
    exact location tuple — the rect is what a future quantized-reuse layer
    would key on, and it makes key prefixes meaningful for diagnostics.
    """
    rect = Rect.from_points(locations)
    return (
        version,
        algorithm,
        aggregate,
        k,
        (rect.xmin, rect.ymin, rect.xmax, rect.ymax),
        tuple((p.x, p.y) for p in locations),
    )
