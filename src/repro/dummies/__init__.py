"""Dummy-location generation strategies (Privacy I).

The paper hides each real location among d - 1 dummies and cites dedicated
dummy-generation algorithms — PAD [20] (privacy-area aware) and the
k-anonymity dummies of [22] — as the pluggable component behind its C_l
cost term.  This package provides that plug point:

- :class:`UniformDummyGenerator` — i.i.d. uniform over the space (the
  paper's evaluation model and the default),
- :class:`PrivacyAreaDummyGenerator` — PAD-style: dummies on a jittered
  grid spanning the whole space, maximizing the anonymity area,
- :class:`POIAwareDummyGenerator` — k-anonymity style: dummies drawn from
  a public POI-density histogram so they land in plausible places.

All protocol runners accept a ``dummy_generator`` override; the ablation
benchmark compares the strategies' anonymity-area and plausibility
metrics.
"""

from repro.dummies.base import DummyGenerator
from repro.dummies.generators import (
    POIAwareDummyGenerator,
    PrivacyAreaDummyGenerator,
    UniformDummyGenerator,
    make_dummy_generator,
)

__all__ = [
    "DummyGenerator",
    "UniformDummyGenerator",
    "PrivacyAreaDummyGenerator",
    "POIAwareDummyGenerator",
    "make_dummy_generator",
]
