"""The dummy-generator interface."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.geometry.point import Point
from repro.geometry.space import LocationSpace


class DummyGenerator(ABC):
    """Produces decoy locations for a location set.

    Implementations must return locations inside the space that are, to the
    LSP, plausible user positions — Privacy I rests on the real location
    being indistinguishable from the dummies.
    """

    @abstractmethod
    def generate(
        self, count: int, space: LocationSpace, rng: np.random.Generator
    ) -> list[Point]:
        """Return ``count`` dummy locations inside ``space``."""

    def name(self) -> str:
        """Registry/reporting label."""
        return type(self).__name__
