"""Concrete dummy-generation strategies."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.datasets.poi import POI
from repro.dummies.base import DummyGenerator
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.space import LocationSpace


class UniformDummyGenerator(DummyGenerator):
    """I.i.d. uniform dummies — the paper's evaluation model."""

    def generate(
        self, count: int, space: LocationSpace, rng: np.random.Generator
    ) -> list[Point]:
        if count < 0:
            raise ConfigurationError("dummy count must be non-negative")
        return space.sample_points(count, rng)


class PrivacyAreaDummyGenerator(DummyGenerator):
    """PAD-style [20]: spread dummies over a jittered grid.

    Uniform sampling can cluster dummies by chance, shrinking the effective
    anonymity area; a jittered grid guarantees coverage of the whole space.
    ``jitter`` scales the random offset inside each grid cell (0 = exact
    grid centers, 1 = anywhere in the cell).
    """

    def __init__(self, jitter: float = 0.8) -> None:
        if not 0.0 <= jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")
        self.jitter = jitter

    def generate(
        self, count: int, space: LocationSpace, rng: np.random.Generator
    ) -> list[Point]:
        if count < 0:
            raise ConfigurationError("dummy count must be non-negative")
        if count == 0:
            return []
        bounds = space.bounds
        cols = math.ceil(math.sqrt(count))
        rows = math.ceil(count / cols)
        cell_w = bounds.width / cols
        cell_h = bounds.height / rows
        # Choose `count` distinct cells, spread deterministically over the
        # grid, then jitter inside each.
        cells = rng.permutation(cols * rows)[:count]
        points = []
        for cell in cells:
            col, row = int(cell) % cols, int(cell) // cols
            cx = bounds.xmin + (col + 0.5) * cell_w
            cy = bounds.ymin + (row + 0.5) * cell_h
            dx = (rng.uniform(-0.5, 0.5)) * cell_w * self.jitter
            dy = (rng.uniform(-0.5, 0.5)) * cell_h * self.jitter
            points.append(Point(cx + dx, cy + dy))
        return points


class POIAwareDummyGenerator(DummyGenerator):
    """k-anonymity-style [22]: dummies near publicly plausible locations.

    Uniform dummies can land in lakes or deserts, letting a map-aware LSP
    discount them.  This generator samples from the (public) POI density:
    it bins a reference POI set into a coarse histogram, draws a cell
    proportionally to its POI count, and jitters within the cell.
    """

    def __init__(self, reference_pois: Sequence[POI], cells_per_side: int = 16) -> None:
        if not reference_pois:
            raise ConfigurationError("need a non-empty public POI sample")
        if cells_per_side < 1:
            raise ConfigurationError("cells_per_side must be positive")
        self.cells_per_side = cells_per_side
        self._reference = list(reference_pois)
        self._weights: np.ndarray | None = None
        self._space: LocationSpace | None = None

    def _histogram(self, space: LocationSpace) -> np.ndarray:
        if self._weights is None or self._space != space:
            g = self.cells_per_side
            bounds = space.bounds
            counts = np.zeros(g * g)
            for poi in self._reference:
                col = min(int((poi.location.x - bounds.xmin) / bounds.width * g), g - 1)
                row = min(int((poi.location.y - bounds.ymin) / bounds.height * g), g - 1)
                counts[row * g + col] += 1
            if counts.sum() == 0:
                raise ConfigurationError("reference POIs outside the space")
            self._weights = counts / counts.sum()
            self._space = space
        return self._weights

    def generate(
        self, count: int, space: LocationSpace, rng: np.random.Generator
    ) -> list[Point]:
        if count < 0:
            raise ConfigurationError("dummy count must be non-negative")
        if count == 0:
            return []
        weights = self._histogram(space)
        g = self.cells_per_side
        bounds = space.bounds
        cell_w = bounds.width / g
        cell_h = bounds.height / g
        cells = rng.choice(g * g, size=count, p=weights)
        xs = bounds.xmin + (cells % g + rng.uniform(0, 1, count)) * cell_w
        ys = bounds.ymin + (cells // g + rng.uniform(0, 1, count)) * cell_h
        return [Point(float(x), float(y)) for x, y in zip(xs, ys, strict=True)]


def make_dummy_generator(name: str) -> DummyGenerator:
    """Construct an argument-free strategy by registry name.

    ``poi-aware`` needs a reference POI set and must be constructed
    directly; runners accept any :class:`DummyGenerator` instance.
    """
    if name == "uniform":
        return UniformDummyGenerator()
    if name == "privacy-area":
        return PrivacyAreaDummyGenerator()
    raise ConfigurationError(
        f"unknown dummy strategy {name!r}; known: uniform, privacy-area "
        f"(POIAwareDummyGenerator must be constructed explicitly)"
    )
