"""Deterministic scatter–gather answer merge, with typed degradation.

**Merge theorem.**  Let the database be partitioned into disjoint shards
and let each responding shard return its *local* exact top-k (ascending
aggregate cost, ties by location — the
:class:`~repro.gnn.engine.GNNQueryEngine` contract).  Because every
global top-k POI is, within its own shard, beaten only by POIs that beat
it globally, the global top-k over the responding shards' POIs is a
subset of the union of the local top-k lists.  Re-scoring that union with
the *same* float expression the engines use —
``aggregate(p.distance_to(q) for q in locations)``, in the group's user
order — and sorting by ``(cost, location, poi_id)`` therefore reproduces
the single-LSP answer **exactly** (bit-identical floats, identical
tie-breaks) whenever all shards respond.  When shards are lost, the same
merge over the survivors is the exact top-k *of the covered sub-database*
— never a silently wrong full answer — and is returned as a typed
:class:`PartialAnswer` carrying the coverage fraction and the a-priori
quality estimate of :func:`repro.metrics.quality.estimate_partial_quality`.

The merge requires unsanitized per-shard answers (``sanitize=False``,
the paper's PPGNN-NAS mode): sanitation truncates local lists below k,
which would break the subset property.  :class:`~repro.cluster.scatter
.ClusterRunner` enforces this at construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.datasets.poi import POI
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.gnn.aggregate import Aggregate
from repro.metrics.quality import PartialAnswerQuality


@dataclass(frozen=True, slots=True)
class ShardAnswer:
    """One shard's decoded sub-query answer plus its serving provenance."""

    shard_id: int
    replica: int
    answer_ids: tuple[int, ...]
    comm_bytes: int
    simulated_seconds: float
    failovers: int = 0
    hedged: bool = False
    hedge_won: bool = False


@dataclass(frozen=True, slots=True)
class PartialAnswer:
    """A degraded-but-honest answer when shards were irrecoverably lost.

    ``answer_ids`` is the exact top-k of the covered sub-database —
    flagged, typed, and quality-estimated, never passed off as the full
    answer.
    """

    answer_ids: tuple[int, ...]
    covered_shards: tuple[int, ...]
    lost_shards: tuple[int, ...]
    coverage: float
    quality: PartialAnswerQuality


def merge_answers(
    answers: Sequence[ShardAnswer],
    locations: Sequence[Point],
    aggregate: Aggregate,
    k: int,
    poi_map: Mapping[int, POI],
) -> tuple[int, ...]:
    """Merge per-shard local top-k lists into the global top-k.

    Pure and deterministic: candidate ids resolve against the
    authoritative ``poi_map`` and are re-scored with the engines' exact
    float expression, so the result matches a single-LSP query over the
    union of the responding shards' POIs bit for bit.
    """
    if k < 1:
        raise ConfigurationError("k must be >= 1")
    candidates: dict[int, POI] = {}
    for answer in answers:
        for poi_id in answer.answer_ids:
            poi = poi_map.get(poi_id)
            if poi is None:
                raise ConfigurationError(
                    f"shard {answer.shard_id} answered unknown poi_id {poi_id}"
                )
            candidates[poi_id] = poi
    scored = sorted(
        (
            aggregate(p.location.distance_to(q) for q in locations),
            (p.location.x, p.location.y),
            p.poi_id,
        )
        for p in candidates.values()
    )
    return tuple(poi_id for _, _, poi_id in scored[:k])
