"""Shard-level fault plans: seeded kills, slow starts, and flaps.

The shard-level sibling of :class:`repro.transport.faults.FaultPlan`.
Where a transport plan misbehaves per *message copy*, a
:class:`ShardFaultPlan` misbehaves per *sub-query*: a replica can be
killed after serving some number of sub-queries, run slow while it warms
up, or flap (go down and come back) over windows of the serving cell's
sub-query sequence.  The interpreter state
(:class:`ShardFaultState`) is a pure function of the plan and the
cell-local sub-query order, so a plan replays the exact same failure
schedule every run — in serial and multiprocessing execution alike —
and can be frozen into a mid-scatter checkpoint.

Mappings are plain dicts (not ``MappingProxyType``) so a plan pickles
across the multiprocessing boundary unchanged; treat plans as immutable
by convention, like every other frozen config in this library.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class ReplicaFault:
    """The scripted misbehavior of one (shard, replica) pair.

    Attributes
    ----------
    kill_after:
        Dead after serving this many sub-queries (``0`` = dead from the
        start, mid-workload for larger values); ``None`` never dies.
    slow_start:
        The replica's first ``slow_start`` sub-queries take
        ``slow_factor`` times the predicted service time (a cold cache /
        JIT warm-up model) — slow enough replicas trigger hedging.
    slow_factor:
        Service-time multiplier during the slow-start window.
    down:
        Flap windows: half-open ``[start, stop)`` intervals of the serving
        cell's global sub-query sequence during which the replica refuses
        service (it recovers afterwards, unlike a kill).
    """

    kill_after: int | None = None
    slow_start: int = 0
    slow_factor: float = 1.0
    down: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.kill_after is not None and self.kill_after < 0:
            raise ConfigurationError("kill_after must be non-negative or None")
        if self.slow_start < 0:
            raise ConfigurationError("slow_start must be non-negative")
        if self.slow_factor < 1.0:
            raise ConfigurationError("slow_factor must be >= 1.0")
        for start, stop in self.down:
            if start < 0 or stop <= start:
                raise ConfigurationError(
                    f"down window [{start}, {stop}) must be non-empty and "
                    "non-negative"
                )


@dataclass(frozen=True)
class ShardFaultPlan:
    """Scripted shard failures, keyed by ``(shard, replica)``.

    ``seed`` feeds the deterministic latency jitter added to simulated
    sub-query durations; the failure schedule itself is fully scripted.
    """

    replicas: Mapping[tuple[int, int], ReplicaFault] = field(default_factory=dict)
    seed: int = 0
    jitter_seconds: float = 0.0

    def __post_init__(self) -> None:
        for key in self.replicas:
            shard, replica = key
            if shard < 0 or replica < 0:
                raise ConfigurationError(
                    f"replica key {key!r} must be non-negative"
                )
        if self.jitter_seconds < 0:
            raise ConfigurationError("jitter_seconds must be non-negative")

    @classmethod
    def killing(
        cls, kills: Mapping[tuple[int, int], int], seed: int = 0
    ) -> "ShardFaultPlan":
        """A plan that only kills: ``(shard, replica) -> kill_after``."""
        replicas = {key: ReplicaFault(kill_after=m) for key, m in kills.items()}
        return cls(replicas=replicas, seed=seed)

    def for_replica(self, shard: int, replica: int) -> ReplicaFault:
        """The scripted faults of one replica (healthy by default)."""
        return self.replicas.get((shard, replica), _HEALTHY)

    def jitter(self, job_id: int, shard: int, replica: int) -> float:
        """Deterministic per-sub-query latency jitter in ``[0, jitter_seconds)``.

        Hash-derived rather than drawn from RNG state, so a resumed
        mid-scatter run charges the exact same jitter as an uninterrupted
        one.
        """
        if self.jitter_seconds == 0.0:
            return 0.0
        key = f"{self.seed}:{job_id}:{shard}:{replica}".encode()
        word = int.from_bytes(hashlib.sha256(key).digest()[:8], "big")
        return self.jitter_seconds * word / 2**64


_HEALTHY = ReplicaFault()


@dataclass
class ShardFaultState:
    """The mutable interpreter of one plan within one serving cell.

    Tracks how many sub-queries each replica has served and the cell's
    global sub-query sequence number — everything needed to answer "is
    this replica up right now and how slow is it", and small enough to
    freeze into a scatter checkpoint.
    """

    plan: ShardFaultPlan | None = None
    served: dict[tuple[int, int], int] = field(default_factory=dict)
    sequence: int = 0

    def advance(self) -> int:
        """Start the next sub-query; returns its global sequence number."""
        seq = self.sequence
        self.sequence += 1
        return seq

    def available(self, shard: int, replica: int, seq: int) -> bool:
        """Whether the replica can serve the ``seq``-th sub-query."""
        if self.plan is None:
            return True
        fault = self.plan.for_replica(shard, replica)
        count = self.served.get((shard, replica), 0)
        if fault.kill_after is not None and count >= fault.kill_after:
            return False
        return all(not (start <= seq < stop) for start, stop in fault.down)

    def service_factor(self, shard: int, replica: int) -> float:
        """The slow-start multiplier for the replica's next sub-query."""
        if self.plan is None:
            return 1.0
        fault = self.plan.for_replica(shard, replica)
        if self.served.get((shard, replica), 0) < fault.slow_start:
            return fault.slow_factor
        return 1.0

    def record_served(self, shard: int, replica: int) -> None:
        key = (shard, replica)
        self.served[key] = self.served.get(key, 0) + 1
