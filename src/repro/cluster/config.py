"""Cluster configuration: shards, replicas, quorum, hedging, routing.

:class:`ClusterConfig` is the single validated knob set the serving
engine threads down to every bucket cell.  Like every config in this
library it is frozen and a pure value — two cells built from the same
config behave identically, which is what keeps serial and
multiprocessing cluster runs byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.faults import ShardFaultPlan
from repro.errors import ConfigurationError
from repro.partition.spatial import PARTITION_STRATEGIES
from repro.serve.costs import CostModel


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of one sharded scatter–gather deployment.

    Attributes
    ----------
    shards:
        Number of disjoint POI partitions; each sub-query fans out to all
        of them (the merge needs every shard's local top-k).
    replicas:
        Identical copies of each shard; failover and hedging choose among
        them via the consistent-hash preference list.
    quorum:
        Minimum covered-POI *fraction* for a degraded answer: when shards
        are irrecoverably lost mid-query, coverage at or above the quorum
        yields a typed :class:`~repro.cluster.merge.PartialAnswer`; below
        it, the query fails with
        :class:`~repro.errors.ShardLostError`.
    partition:
        POI partition strategy (see :mod:`repro.partition.spatial`).
    virtual_nodes:
        Consistent-hash ring points per replica (routing smoothness).
    hedge_factor:
        Hedge a straggler sub-query when its simulated duration exceeds
        ``hedge_factor`` times the cost-model prediction; ``None``
        disables hedging.
    failover_backoff_seconds:
        Simulated backoff charged before each failover attempt, doubled
        per attempt (deadline-aware: attempts stop once
        ``deadline_seconds`` of simulated scatter time is spent).
    faults:
        Scripted shard failures injected into every serving cell.
    cost_model:
        Predicts per-sub-query service seconds for the scatter's
        simulated clock (hedging decisions, per-shard load accounting).
    """

    shards: int = 2
    replicas: int = 1
    quorum: float = 0.5
    partition: str = "spatial"
    virtual_nodes: int = 16
    hedge_factor: float | None = 2.0
    failover_backoff_seconds: float = 0.01
    faults: ShardFaultPlan | None = None
    cost_model: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if self.replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        if not 0.0 < self.quorum <= 1.0:
            raise ConfigurationError("quorum must be in (0, 1]")
        if self.partition not in PARTITION_STRATEGIES:
            raise ConfigurationError(
                f"unknown partition strategy {self.partition!r}; "
                f"known: {list(PARTITION_STRATEGIES)}"
            )
        if self.virtual_nodes < 1:
            raise ConfigurationError("virtual_nodes must be >= 1")
        if self.hedge_factor is not None and self.hedge_factor <= 1.0:
            raise ConfigurationError("hedge_factor must be > 1.0 or None")
        if self.failover_backoff_seconds < 0:
            raise ConfigurationError(
                "failover_backoff_seconds must be non-negative"
            )
