"""repro.cluster — sharded scatter–gather serving over partitioned LSPs.

The paper's protocols assume one always-available LSP; a production
deployment partitions the POI database across shards, replicates each
shard, and treats partial failure as the normal case.  This package adds
that layer *around* the unmodified protocol stack:

- :mod:`~repro.cluster.config` — :class:`ClusterConfig`, the validated
  knob set (shards, replicas, quorum, hedging, partition strategy),
- :mod:`~repro.cluster.topology` — :class:`ClusterTopology`, the
  deterministic shard map built via :mod:`repro.partition.spatial`,
- :mod:`~repro.cluster.routing` — :class:`HashRing`, consistent hashing
  of (tenant, group) onto per-shard replica preference lists,
- :mod:`~repro.cluster.faults` — :class:`ShardFaultPlan`, seeded shard
  kills / slow starts / flaps (the shard-level sibling of
  :class:`~repro.transport.faults.FaultPlan`),
- :mod:`~repro.cluster.merge` — the deterministic answer merge and the
  typed :class:`PartialAnswer` degradation result,
- :mod:`~repro.cluster.scatter` — :class:`ClusterRunner`, the per-cell
  scatter–gather executor with failover, hedging, quorum, and a
  checkpointable :class:`ScatterState`.

Every encrypted sub-query is a full, unmodified protocol round against
one shard's LSP, so the privacy argument of the paper applies per shard
verbatim; the cluster layer only ever sees what the querier (the
coordinator) would see anyway.
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.faults import ReplicaFault, ShardFaultPlan
from repro.cluster.merge import PartialAnswer, ShardAnswer, merge_answers
from repro.cluster.routing import HashRing
from repro.cluster.scatter import ClusterRunner, ClusterStats, ScatterState
from repro.cluster.topology import ClusterTopology

__all__ = [
    "ClusterConfig",
    "ClusterRunner",
    "ClusterStats",
    "ClusterTopology",
    "HashRing",
    "PartialAnswer",
    "ReplicaFault",
    "ScatterState",
    "ShardAnswer",
    "ShardFaultPlan",
    "merge_answers",
]
