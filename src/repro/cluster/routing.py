"""Consistent-hash routing of (tenant, group) onto shard replicas.

A query fans out to *every* shard (the merge needs each shard's local
top-k), so routing does not pick shards — it picks, per shard, which
*replica* serves a given (tenant, group) and in what failover order.
:class:`HashRing` is the classic consistent-hash construction: each
replica contributes ``virtual_nodes`` points on a ring keyed by SHA-256;
a query key walks the ring clockwise collecting distinct replicas.  The
walk order is the *preference list*: position 0 is the primary, the rest
are failover targets (and hedging candidates) in deterministic order.

SHA-256 rather than Python's ``hash`` keeps placement identical across
processes and interpreter runs — a requirement, not an optimization,
since bucket cells rebuilt inside multiprocessing workers must route
every sub-query exactly like the serial executor does.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import ConfigurationError


def _ring_point(label: str) -> int:
    return int.from_bytes(hashlib.sha256(label.encode()).digest()[:8], "big")


class HashRing:
    """Per-shard replica rings with deterministic preference lists."""

    def __init__(
        self, shards: int, replicas: int, virtual_nodes: int = 16, salt: int = 0
    ) -> None:
        if shards < 1 or replicas < 1 or virtual_nodes < 1:
            raise ConfigurationError(
                "shards, replicas, and virtual_nodes must all be >= 1"
            )
        self.shards = shards
        self.replicas = replicas
        self._rings: list[list[tuple[int, int]]] = []
        for shard in range(shards):
            ring = sorted(
                (_ring_point(f"{salt}:{shard}:{replica}:{v}"), replica)
                for replica in range(replicas)
                for v in range(virtual_nodes)
            )
            self._rings.append(ring)

    def preference(self, tenant: str, group_id: int, shard: int) -> tuple[int, ...]:
        """All replicas of ``shard`` in failover order for one query key."""
        if not 0 <= shard < self.shards:
            raise ConfigurationError(f"unknown shard {shard}")
        ring = self._rings[shard]
        key = _ring_point(f"key:{tenant}:{group_id}:{shard}")
        start = bisect.bisect_right(ring, (key, -1)) % len(ring)
        seen: list[int] = []
        for i in range(len(ring)):
            replica = ring[(start + i) % len(ring)][1]
            if replica not in seen:
                seen.append(replica)
                if len(seen) == self.replicas:
                    break
        return tuple(seen)

    def route(self, tenant: str, group_id: int, shard: int) -> int:
        """The primary replica for one (tenant, group, shard) key."""
        return self.preference(tenant, group_id, shard)[0]
