"""The deterministic shard map of one cluster.

:class:`ClusterTopology` pins which POI lives on which shard — a pure
function of the database and the :class:`~repro.cluster.config
.ClusterConfig`, built via :mod:`repro.partition.spatial`.  Every serving
cell (serial or multiprocessing) rebuilds the identical topology from the
same inputs, so the scatter's per-shard sub-queries and the final merge
agree everywhere.

Replicas are a routing and fault-injection concept, not a data concept:
all replicas of a shard hold the same POI tuple, so a cell materializes
one LSP per shard and lets the fault plan decide which *replica
identity* served (or refused) each sub-query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.cluster.config import ClusterConfig
from repro.datasets.poi import POI
from repro.errors import ConfigurationError
from repro.partition.spatial import partition_pois


@dataclass(frozen=True)
class ClusterTopology:
    """Disjoint, jointly exhaustive shard assignment of one POI database."""

    shard_pois: tuple[tuple[POI, ...], ...]

    @classmethod
    def build(cls, pois: Sequence[POI], config: ClusterConfig) -> "ClusterTopology":
        return cls(partition_pois(pois, config.shards, config.partition))

    @property
    def shards(self) -> int:
        return len(self.shard_pois)

    @property
    def total_pois(self) -> int:
        return sum(len(cell) for cell in self.shard_pois)

    def poi_count(self, shard: int) -> int:
        if not 0 <= shard < self.shards:
            raise ConfigurationError(f"unknown shard {shard}")
        return len(self.shard_pois[shard])

    def poi_map(self) -> dict[int, POI]:
        """Authoritative poi_id -> POI over the whole database."""
        return {
            poi.poi_id: poi for cell in self.shard_pois for poi in cell
        }

    def coverage(self, lost_shards: Iterable[int]) -> float:
        """Fraction of the database still searchable after losing shards.

        POI-count-weighted (not shard-count-weighted): losing a dense
        shard hurts more than losing a sparse one, and the quorum policy
        should see that.
        """
        lost = set(lost_shards)
        for shard in lost:
            if not 0 <= shard < self.shards:
                raise ConfigurationError(f"unknown shard {shard}")
        covered = sum(
            len(cell) for i, cell in enumerate(self.shard_pois) if i not in lost
        )
        return covered / self.total_pois
