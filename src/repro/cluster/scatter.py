"""The per-cell scatter–gather executor: failover, hedging, quorum.

One :class:`ClusterRunner` lives inside one serving-cell (bucket): it
partitions the cell's database into shard LSPs, and for every job
scatters one full encrypted protocol round per shard, gathers the local
top-k answers, and merges them (:mod:`repro.cluster.merge`).  Each
sub-query rides its own per-shard-replica session — a real
:class:`~repro.core.session.QuerySession` (or
:class:`~repro.transport.session.ResilientSession` when message-level
faults are on), so transport retries, guards, and nonce pools behave
exactly as in the single-LSP path.

Robustness semantics, all on the deterministic simulated clock:

- **Failover** — a replica that is scripted-dead, flapping, or whose
  channel died (:class:`~repro.errors.ShardLostError` /
  :class:`~repro.errors.RetryExhaustedError`) is abandoned and the next
  replica on the consistent-hash preference list is tried, after an
  exponentially growing simulated backoff.  Attempts stop when the
  scatter's deadline budget is spent (deadline-aware backoff).
- **Hedging** — a sub-query whose simulated duration exceeds
  ``hedge_factor`` times the cost-model prediction is re-issued to the
  next live replica; the faster copy wins.  Replicas hold identical data
  and the protocol is deterministic under a fixed seed, so both copies
  decode to the same answer — the library executes the crypto once and
  accounts the race on the simulated clock.
- **Quorum** — shards with no serving replica are *lost*; if the covered
  POI fraction stays at or above the quorum the job degrades to a typed
  :class:`~repro.cluster.merge.PartialAnswer`, otherwise it fails with
  :class:`~repro.errors.ShardLostError`.  Either way, no silently wrong
  full answer can be produced: the merge only ever claims the shards
  that actually responded.

A mid-scatter :class:`ScatterState` (progress plus the shard-fault
interpreter state) freezes into checkpoint bytes via
:func:`repro.guard.checkpoint.checkpoint_scatter`, and a fresh cell can
resume it to a digest-identical completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.cluster.config import ClusterConfig
from repro.cluster.faults import ShardFaultState
from repro.cluster.merge import (
    PartialAnswer,
    ShardAnswer,
    merge_answers,
)
from repro.cluster.routing import HashRing
from repro.cluster.topology import ClusterTopology
from repro.core.config import PPGNNConfig
from repro.core.lsp import LSPServer
from repro.core.session import QuerySession
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    RetryExhaustedError,
    ShardLostError,
)
from repro.metrics.quality import estimate_partial_quality
from repro.obs import Observability, maybe_span
from repro.serve.cache import CacheStats, KnnLRUCache
from repro.serve.workload import GroupProfile, QueryJob
from repro.transport.channel import FaultyChannel
from repro.transport.retry import RetryPolicy
from repro.transport.session import ResilientSession

_PROTOCOL_INDEX = {"ppgnn": 0, "ppgnn-opt": 1, "naive": 2}


@dataclass
class ClusterStats:
    """Per-cell cluster counters, merged into the serving report.

    Merging always happens in bucket order (like
    :class:`~repro.serve.pool.BucketStats`), so the serial and
    multiprocessing executors report identical cluster sections.
    """

    subqueries: int = 0
    failovers: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    partial_answers: int = 0
    shards_lost: int = 0
    # Circuit-breaker accounting (zero when breakers are off).  These are
    # surfaced through the report's *control* section, not the cluster
    # section, so pre-control cluster reports stay byte-identical.
    breaker_opens: int = 0
    breaker_probes: int = 0
    breaker_short_circuits: int = 0
    per_shard_subqueries: dict[int, int] = field(default_factory=dict)
    per_shard_seconds: dict[int, float] = field(default_factory=dict)

    def merge(self, other: "ClusterStats") -> None:
        self.subqueries += other.subqueries
        self.failovers += other.failovers
        self.hedges += other.hedges
        self.hedge_wins += other.hedge_wins
        self.partial_answers += other.partial_answers
        self.shards_lost += other.shards_lost
        self.breaker_opens += other.breaker_opens
        self.breaker_probes += other.breaker_probes
        self.breaker_short_circuits += other.breaker_short_circuits
        for shard, count in other.per_shard_subqueries.items():
            self.per_shard_subqueries[shard] = (
                self.per_shard_subqueries.get(shard, 0) + count
            )
        for shard, seconds in other.per_shard_seconds.items():
            self.per_shard_seconds[shard] = (
                self.per_shard_seconds.get(shard, 0.0) + seconds
            )

    def load_imbalance(self) -> float:
        """Max over mean per-shard sub-query load (1.0 = perfectly even)."""
        if not self.per_shard_subqueries:
            return 0.0
        counts = list(self.per_shard_subqueries.values())
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean > 0 else 0.0


@dataclass
class ScatterState:
    """Mid-flight progress of one job's scatter (checkpointable).

    Carries both the job progress (which shards answered with what,
    which are pending, which are lost) and the shard-fault interpreter
    snapshot, so a restored run replays the exact failure schedule an
    uninterrupted one would have seen.
    """

    job_id: int
    pending: list[int]
    answers: list[ShardAnswer] = field(default_factory=list)
    lost: list[int] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    fault_served: dict[tuple[int, int], int] = field(default_factory=dict)
    fault_sequence: int = 0

    @property
    def done(self) -> bool:
        return not self.pending


@dataclass(frozen=True, slots=True)
class ScatterOutcome:
    """What one scattered job produced, full or degraded."""

    answer_ids: tuple[int, ...]
    comm_bytes: int
    partial: bool
    coverage: float
    lost_shards: tuple[int, ...]
    expected_recall: float
    failovers: int
    hedges: int
    hedge_wins: int
    partial_answer: PartialAnswer | None = None


class ClusterRunner:
    """Scatter–gather over one cell's shard LSPs (see module docstring)."""

    def __init__(
        self,
        lsp: LSPServer,
        base_config: PPGNNConfig,
        cluster: ClusterConfig,
        *,
        transport_faults=None,
        guard=None,
        obs: Observability | None = None,
        registry=None,
        top_up: Callable | None = None,
        deadline_seconds: float | None = None,
        knn_cache_size: int | None = None,
        retry_budget: int | None = None,
        breaker_failures: int | None = None,
        breaker_probe_after: int = 8,
    ) -> None:
        if base_config.sanitize:
            raise ConfigurationError(
                "the scatter–gather merge needs unsanitized per-shard "
                "answers; run the cluster with sanitize=False (PPGNN-NAS)"
            )
        self.cluster = cluster
        self.base_config = base_config
        self.topology = ClusterTopology.build(lsp.engine.pois, cluster)
        self.poi_map = self.topology.poi_map()
        self.aggregate = lsp.aggregate
        self.ring = HashRing(
            cluster.shards, cluster.replicas, cluster.virtual_nodes
        )
        # Shards inherit the cell's index substrate — exact kinds only:
        # the merge's coverage math assumes exact per-shard answers.
        index = getattr(lsp.engine, "index_kind", "rtree")
        if getattr(lsp.engine, "is_approximate", False):
            raise ConfigurationError(
                f"approximate index {index!r} cannot back a cluster; "
                "use an exact index kind"
            )
        self.shard_lsps = [
            LSPServer(
                pois=list(cell),
                space=lsp.space,
                aggregate_name=lsp.aggregate.name,
                gamma=lsp.gamma,
                eta=lsp.eta,
                phi=lsp.phi,
                sanitation_samples=lsp.sanitation_samples,
                index=index,
            )
            for cell in self.topology.shard_pois
        ]
        if knn_cache_size is not None:
            for shard_lsp in self.shard_lsps:
                shard_lsp.engine.set_knn_cache(KnnLRUCache(knn_cache_size))
        self.transport_faults = transport_faults
        self.guard = guard
        self.obs = obs
        self.registry = registry
        self.top_up = top_up
        self.deadline_seconds = deadline_seconds
        self.fault_state = ShardFaultState(plan=cluster.faults)
        self.stats = ClusterStats()
        self.retry_budget = retry_budget
        self.breakers = None
        if breaker_failures is not None:
            # Imported lazily: repro.serve.control is the overload-control
            # layer above this module; only the breaker board lives here.
            from repro.serve.control import BreakerBoard

            self.breakers = BreakerBoard(
                breaker_failures,
                breaker_probe_after,
                stats=self.stats,
                obs=obs,
            )
        self._sessions: dict[tuple[int, str, int, int, int], QuerySession] = {}

    # ------------------------------------------------------------- sessions

    def _session(
        self, job: QueryJob, config: PPGNNConfig, shard: int, replica: int
    ) -> QuerySession:
        key = (job.group_id, job.protocol, job.k, shard, replica)
        session = self._sessions.get(key)
        if session is not None:
            return session
        kwargs = dict(
            lsp=self.shard_lsps[shard],
            config=config,
            protocol=job.protocol,
            seed=job.seed,
            max_history=1,
            guard=self.guard,
            obs=self.obs,
        )
        if self.transport_faults is not None:
            # Same derivation as the single-LSP path, plus the shard and
            # replica identity — each replica channel misbehaves on its
            # own independent, replayable schedule.
            plan = replace(
                self.transport_faults,
                seed=self.transport_faults.seed * 7919
                + job.group_id * 31
                + _PROTOCOL_INDEX[job.protocol] * 7
                + job.k
                + (shard + 1) * 1_000_003
                + (replica + 1) * 101,
            )
            if self.retry_budget is not None:
                kwargs["policy"] = RetryPolicy(retry_budget=self.retry_budget)
            session = ResilientSession(channel=FaultyChannel(plan), **kwargs)
        else:
            session = QuerySession(**kwargs)
        if self.registry is not None:
            from repro.core.common import group_keypair

            keypair = group_keypair(config)
            session.nonce_pool = self.registry.pool_for(keypair.public_key)
        self._sessions[key] = session
        return session

    def _job_config(self, job: QueryJob) -> PPGNNConfig:
        if job.k == self.base_config.k:
            return self.base_config
        return replace(self.base_config, k=job.k)

    # ------------------------------------------------------------ scatter

    def begin(self, job: QueryJob) -> ScatterState:
        """Open one job's scatter over all shards, in shard order."""
        return ScatterState(
            job_id=job.job_id, pending=list(range(self.topology.shards))
        )

    def _predicted(self, job: QueryJob, group: GroupProfile) -> float:
        return self.cluster.cost_model.predict_seconds(
            job.protocol, len(group.locations), self._job_config(job)
        )

    def _duration(
        self, job: QueryJob, shard: int, replica: int, predicted: float
    ) -> float:
        factor = self.fault_state.service_factor(shard, replica)
        jitter = 0.0
        if self.cluster.faults is not None:
            jitter = self.cluster.faults.jitter(job.job_id, shard, replica)
        return predicted * factor + jitter

    def _next_live_replica(
        self, preference: tuple[int, ...], after: int, shard: int, seq: int
    ) -> int | None:
        index = preference.index(after)
        for replica in preference[index + 1 :]:
            if self.fault_state.available(shard, replica, seq):
                return replica
        return None

    def step(self, state: ScatterState, job: QueryJob, group: GroupProfile) -> None:
        """Serve the next pending shard: failover, hedging, accounting."""
        if state.done:
            raise ProtocolError("scatter already complete")
        shard = state.pending.pop(0)
        config = self._job_config(job)
        predicted = self._predicted(job, group)
        seq = self.fault_state.advance()
        state.fault_sequence = self.fault_state.sequence
        preference = self.ring.preference(job.tenant, job.group_id, shard)
        backoff = self.cluster.failover_backoff_seconds
        failovers = 0
        answer: ShardAnswer | None = None
        with maybe_span(self.obs, "cluster.shard", shard=shard) as span:
            for attempt, replica in enumerate(preference):
                if (
                    self.deadline_seconds is not None
                    and state.elapsed_seconds >= self.deadline_seconds
                ):
                    break  # deadline-aware: stop burning backoff on a lost cause
                if attempt > 0:
                    failovers += 1
                    state.elapsed_seconds += backoff * 2 ** (attempt - 1)
                if self.breakers is not None and not self.breakers.allow(
                    shard, replica, seq
                ):
                    # Open breaker: skip the replica *before* any transport
                    # traffic — no timeouts, no retries against a peer that
                    # just failed repeatedly.  Sequence time keeps flowing,
                    # so the breaker half-opens for a probe later.
                    continue
                if not self.fault_state.available(shard, replica, seq):
                    if self.breakers is not None:
                        self.breakers.failure(shard, replica, seq)
                    continue
                try:
                    answer = self._serve(
                        state, job, group, config, shard, replica, predicted, seq
                    )
                except (ShardLostError, RetryExhaustedError):
                    # Dead party or dead channel on the provider side:
                    # both cure by failover, and both consumed a timeout.
                    if self.breakers is not None:
                        self.breakers.failure(shard, replica, seq)
                    state.elapsed_seconds += predicted
                    continue
                if self.breakers is not None:
                    self.breakers.success(shard, replica)
                break
            if answer is not None and failovers:
                answer = replace(answer, failovers=failovers)
            if span is not None and answer is not None:
                span.set(replica=answer.replica, failovers=failovers)
        self.stats.failovers += failovers
        if self.obs is not None and failovers:
            self.obs.count("cluster.failovers", failovers)
        if answer is None:
            state.lost.append(shard)
            self.stats.shards_lost += 1
            if self.obs is not None:
                self.obs.count("cluster.shards_lost")
        else:
            state.answers.append(answer)
        state.fault_served = dict(self.fault_state.served)

    def _serve(
        self,
        state: ScatterState,
        job: QueryJob,
        group: GroupProfile,
        config: PPGNNConfig,
        shard: int,
        replica: int,
        predicted: float,
        seq: int,
    ) -> ShardAnswer:
        """One real sub-query round, plus the simulated hedging race."""
        session = self._session(job, config, shard, replica)
        if self.top_up is not None:
            self.top_up(job, config, len(group.locations))
        self.shard_lsps[shard].reset_rng(job.seed)
        result = session.query(group.locations, seed=job.seed)
        duration = self._duration(job, shard, replica, predicted)
        self.fault_state.record_served(shard, replica)
        winner, hedged, hedge_won = replica, False, False
        factor = self.cluster.hedge_factor
        if factor is not None and duration > factor * predicted:
            preference = self.ring.preference(job.tenant, job.group_id, shard)
            target = self._next_live_replica(preference, replica, shard, seq)
            if target is not None:
                hedged = True
                self.stats.hedges += 1
                if self.obs is not None:
                    self.obs.count("cluster.hedges")
                rival = self._duration(job, shard, target, predicted)
                self.fault_state.record_served(shard, target)
                if rival < duration:
                    hedge_won = True
                    winner, duration = target, rival
                    self.stats.hedge_wins += 1
                    if self.obs is not None:
                        self.obs.count("cluster.hedge_wins")
        state.elapsed_seconds += duration
        self.stats.subqueries += 1
        self.stats.per_shard_subqueries[shard] = (
            self.stats.per_shard_subqueries.get(shard, 0) + 1
        )
        self.stats.per_shard_seconds[shard] = (
            self.stats.per_shard_seconds.get(shard, 0.0) + duration
        )
        if self.obs is not None:
            self.obs.count("cluster.subqueries")
        return ShardAnswer(
            shard_id=shard,
            replica=winner,
            answer_ids=result.answer_ids,
            comm_bytes=result.report.total_comm_bytes,
            simulated_seconds=duration,
            failovers=0,
            hedged=hedged,
            hedge_won=hedge_won,
        )

    # ------------------------------------------------------------- gather

    def finish(
        self, state: ScatterState, job: QueryJob, group: GroupProfile
    ) -> ScatterOutcome:
        """Merge the gathered shard answers, degrading past lost shards."""
        if not state.done:
            raise ProtocolError("scatter still has pending shards")
        lost = tuple(sorted(state.lost))
        if len(state.answers) == 0:
            raise ShardLostError(
                f"lsp:{lost[0]}",
                lost[0],
                ("coordinator", f"lsp:{lost[0]}"),
                self.cluster.replicas,
            )
        answer_ids = merge_answers(
            state.answers, group.locations, self.aggregate, job.k, self.poi_map
        )
        comm_bytes = sum(a.comm_bytes for a in state.answers)
        failovers = sum(a.failovers for a in state.answers)
        hedges = sum(1 for a in state.answers if a.hedged)
        hedge_wins = sum(1 for a in state.answers if a.hedge_won)
        if not lost:
            return ScatterOutcome(
                answer_ids=answer_ids,
                comm_bytes=comm_bytes,
                partial=False,
                coverage=1.0,
                lost_shards=(),
                expected_recall=1.0,
                failovers=failovers,
                hedges=hedges,
                hedge_wins=hedge_wins,
            )
        coverage = self.topology.coverage(lost)
        if coverage < self.cluster.quorum:
            raise ShardLostError(
                f"lsp:{lost[0]}",
                lost[0],
                ("coordinator", f"lsp:{lost[0]}"),
                self.cluster.replicas,
            )
        covered = tuple(
            shard for shard in range(self.topology.shards) if shard not in lost
        )
        quality = estimate_partial_quality(
            covered_pois=sum(self.topology.poi_count(s) for s in covered),
            total_pois=self.topology.total_pois,
            k=job.k,
        )
        partial = PartialAnswer(
            answer_ids=answer_ids,
            covered_shards=covered,
            lost_shards=lost,
            coverage=coverage,
            quality=quality,
        )
        self.stats.partial_answers += 1
        if self.obs is not None:
            self.obs.count("cluster.partial_answers")
        return ScatterOutcome(
            answer_ids=answer_ids,
            comm_bytes=comm_bytes,
            partial=True,
            coverage=coverage,
            lost_shards=lost,
            expected_recall=quality.expected_recall,
            failovers=failovers,
            hedges=hedges,
            hedge_wins=hedge_wins,
            partial_answer=partial,
        )

    def run_job(self, job: QueryJob, group: GroupProfile) -> ScatterOutcome:
        """Scatter, gather, and merge one job end to end."""
        with maybe_span(
            self.obs, "cluster.scatter", job_id=job.job_id,
            shards=self.topology.shards,
        ):
            state = self.begin(job)
            while not state.done:
                self.step(state, job, group)
            return self.finish(state, job, group)

    # --------------------------------------------------------- durability

    def checkpoint(self, state: ScatterState) -> bytes:
        """Freeze a mid-scatter state (progress + fault interpreter)."""
        from repro.guard.checkpoint import checkpoint_scatter

        state.fault_served = dict(self.fault_state.served)
        state.fault_sequence = self.fault_state.sequence
        return checkpoint_scatter(state)

    def restore(self, data: bytes) -> ScatterState:
        """Rebuild a mid-scatter state and resync the fault interpreter.

        The restored schedule replays exactly: remaining sub-queries see
        the same kill counters and sequence numbers an uninterrupted run
        would have, so the finished job is digest-identical to one that
        never stopped.
        """
        from repro.guard.checkpoint import restore_scatter

        state = restore_scatter(data)
        self.fault_state.served = dict(state.fault_served)
        self.fault_state.sequence = state.fault_sequence
        return state

    # ------------------------------------------------------------- stats

    def cache_stats(self) -> CacheStats:
        """Merged kNN-cache counters across all shard engines."""
        stats = CacheStats()
        for shard_lsp in self.shard_lsps:
            cache = shard_lsp.engine.knn_cache
            if cache is not None:
                stats.merge(cache.stats)
        return stats

    def transports(self):
        """Every live sub-session transport (retransmission accounting)."""
        for session in self._sessions.values():
            transport = getattr(session, "transport", None)
            if transport is not None:
                yield transport
