"""Group k-nearest-neighbor (kGNN) query engine.

Implements Definition 2.1 of the paper: given POI database D, query
locations C, distance ``dis`` and a monotonically increasing aggregate F,
retrieve the k POIs minimizing ``F(dis(p, l_1), ..., dis(p, l_n))``.

- :mod:`~repro.gnn.aggregate` — the sum / max / min aggregates (Eqn 1),
- :mod:`~repro.gnn.mbm` — the Minimum Bounding Method of Papadias et al.
  [24], the plaintext kGNN algorithm the paper's LSP runs,
- :mod:`~repro.gnn.knn` — classic best-first kNN (the n = 1 special case),
- :mod:`~repro.gnn.bruteforce` — the O(D log D) oracle for testing,
- :mod:`~repro.gnn.engine` — the black-box ``GNNQueryEngine`` the protocols
  call; swapping this engine adapts the protocol to any group query
  (Section 1, novelty 4).
"""

from repro.gnn.aggregate import Aggregate, MAX, MIN, SUM, get_aggregate
from repro.gnn.bruteforce import brute_force_kgnn
from repro.gnn.engine import GNNQueryEngine
from repro.gnn.knn import best_first_knn, incremental_nearest
from repro.gnn.mbm import mbm_kgnn
from repro.gnn.mqm import mqm_kgnn
from repro.gnn.spm import spm_kgnn

__all__ = [
    "Aggregate",
    "SUM",
    "MAX",
    "MIN",
    "get_aggregate",
    "best_first_knn",
    "incremental_nearest",
    "mbm_kgnn",
    "spm_kgnn",
    "mqm_kgnn",
    "brute_force_kgnn",
    "GNNQueryEngine",
]
