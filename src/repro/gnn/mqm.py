"""Multiple Query Method (MQM) for group kNN queries [24].

The threshold algorithm over n incremental NN streams, one per query
location: streams advance round-robin; every newly surfaced POI is scored
exactly (random access — n distance computations); the frontier distances
``t_i`` of the streams bound every unseen POI from below via monotonicity,

    F(p_unseen, Q) >= F(t_1, ..., t_n),

so the search stops once the k-th best exact score is at most that
threshold.  MQM works for *any* monotone aggregate (unlike SPM) and shines
when the per-user neighborhoods barely overlap; the kGNN ablation bench
compares it against MBM and SPM.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.gnn.aggregate import Aggregate
from repro.gnn.knn import incremental_nearest
from repro.index.base import IndexCounters, SpatialIndex


def mqm_kgnn(
    tree: SpatialIndex,
    locations: Sequence[Point],
    k: int,
    aggregate: Aggregate,
    counters: IndexCounters | None = None,
) -> list[tuple[Point, Any, float]]:
    """Exact top-``k`` group nearest neighbors via the threshold algorithm.

    Same result contract as :func:`~repro.gnn.mbm.mbm_kgnn`.
    """
    if k < 1:
        raise ConfigurationError("k must be positive")
    if not locations:
        raise ConfigurationError("kGNN query needs at least one location")
    streams = [incremental_nearest(tree, l, counters) for l in locations]
    frontiers = [0.0] * len(locations)
    exhausted = [False] * len(locations)
    seen: set[int] = set()
    best: list[tuple[float, Point, Any]] = []

    while not all(exhausted):
        for i, stream in enumerate(streams):
            if exhausted[i]:
                continue
            step = next(stream, None)
            if step is None:
                exhausted[i] = True
                frontiers[i] = float("inf")
                continue
            dist, p, item = step
            frontiers[i] = dist
            identity = id(item)
            if identity not in seen:
                seen.add(identity)
                score = aggregate(p.distance_to(l) for l in locations)
                best.append((score, p, item))
                best.sort(key=lambda t: (t[0], t[1]))
                del best[k:]
        threshold = aggregate(frontiers)
        if len(best) >= k and best[k - 1][0] <= threshold:
            break
    return [(p, item, score) for score, p, item in best]
