"""Monotonically increasing aggregate cost functions (Eqn 1).

The paper's F maps the vector of user distances to a single cost and must
be monotonically increasing in every argument — that property is what makes
``F(mindist(p, MBR))`` a valid lower bound inside the MBM search and what
the inequality attack (Section 5.1) exploits.  The three aggregates the
paper names are provided; custom aggregates can be registered for the
"any group query" black-box claim.

Each aggregate exposes both a scalar form (used by the query engines) and a
vectorized numpy form over a ``(samples, users)`` distance matrix (used by
the Monte-Carlo answer sanitation, where tens of thousands of candidate
locations are tested at once).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Aggregate:
    """A named monotone aggregate with scalar and vectorized evaluation.

    Attributes
    ----------
    name:
        Registry key (``"sum"``, ``"max"``, ``"min"``, or custom).
    combine:
        Scalar form: maps an iterable of distances to the aggregate cost.
        The iterable may be a one-shot generator — implementations that
        need multiple passes must materialize it (``list(distances)``)
        before reducing.
    combine_rows:
        Vectorized form: maps a ``(samples, users)`` float array to a
        ``(samples,)`` array of costs.
    partial / merge:
        Optional decomposition for associative aggregates, exploited by the
        answer sanitation: ``partial`` reduces the known users' distances to
        one scalar per POI, and ``merge(sample_dists, partials)`` combines a
        ``(samples, pois)`` distance array with the ``(pois,)`` partials
        into the full aggregate — e.g. plain addition for ``sum``.  When
        either is None the sanitizer falls back to ``combine_rows`` on
        explicitly assembled matrices, which works for any monotone F.
    """

    name: str
    combine: Callable[[Iterable[float]], float]
    combine_rows: Callable[[np.ndarray], np.ndarray]
    partial: Callable[[Iterable[float]], float] | None = None
    merge: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None

    def __call__(self, distances: Iterable[float]) -> float:
        return self.combine(distances)

    @property
    def decomposable(self) -> bool:
        """Whether the fast partial/merge sanitation path is available."""
        return self.partial is not None and self.merge is not None

    def __repr__(self) -> str:
        return f"Aggregate({self.name!r})"


SUM = Aggregate(
    "sum",
    lambda ds: float(sum(ds)),
    lambda m: m.sum(axis=1),
    partial=lambda ds: float(sum(ds)),
    merge=np.add,
)
MAX = Aggregate(
    "max",
    lambda ds: float(max(ds)),
    lambda m: m.max(axis=1),
    partial=lambda ds: float(max(ds)),
    merge=np.maximum,
)
MIN = Aggregate(
    "min",
    lambda ds: float(min(ds)),
    lambda m: m.min(axis=1),
    partial=lambda ds: float(min(ds)),
    merge=np.minimum,
)

_REGISTRY: dict[str, Aggregate] = {a.name: a for a in (SUM, MAX, MIN)}


def register_aggregate(aggregate: Aggregate) -> None:
    """Add a custom monotone aggregate to the registry.

    The caller is responsible for monotonicity; a non-monotone F breaks the
    MBM pruning bound and the sanitation's inequality construction.
    """
    if aggregate.name in _REGISTRY:
        raise ConfigurationError(f"aggregate {aggregate.name!r} already registered")
    _REGISTRY[aggregate.name] = aggregate


def get_aggregate(name: str) -> Aggregate:
    """Look up an aggregate by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown aggregate {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
