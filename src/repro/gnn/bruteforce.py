"""Exhaustive group-kNN: the oracle MBM is property-tested against."""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.gnn.aggregate import Aggregate


def brute_force_kgnn(
    entries: Iterable[tuple[Point, Any]],
    locations: Sequence[Point],
    k: int,
    aggregate: Aggregate,
) -> list[tuple[Point, Any, float]]:
    """Score every entry and return the top ``k`` by aggregate cost.

    Same tie-breaking contract as :func:`~repro.gnn.mbm.mbm_kgnn` (score,
    then location), so results are comparable element-wise in tests.
    """
    if k < 1:
        raise ConfigurationError("k must be positive")
    if not locations:
        raise ConfigurationError("kGNN query needs at least one location")
    scored = [
        (aggregate(p.distance_to(q) for q in locations), p, item)
        for p, item in entries
    ]
    scored.sort(key=lambda t: (t[0], t[1]))
    return [(p, item, score) for score, p, item in scored[:k]]
