"""The kGNN black box the privacy protocols call.

The PPGNN design treats query answering as an opaque function from
``(k, locations)`` to a ranked POI list (Section 1, novelty 4).  This module
gives that black box a concrete default — MBM over an R-tree — behind an
interface narrow enough that any group query (e.g. a meeting-location
determination algorithm, see ``examples/ppmld.py``) can be swapped in.

The index substrate is selectable (:data:`INDEX_KINDS`).  The exact kinds
(``rtree``, ``kdtree``, ``grid``, ``bruteforce``) produce byte-identical
answers — only the traversal work differs, metered through
``engine.index_counters``.  The approximate kinds (``spill``, ``lsh``)
trade exactness for sub-linear candidate sets: they score only the union
of the index's :meth:`candidate_entries` per query location, and every
such engine carries a seeded, measured ``recall_estimate`` so consumers
(the serving layer) can mark answers as partial rather than silently
degrade.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.datasets.poi import POI
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.space import LocationSpace
from repro.gnn.aggregate import Aggregate, SUM
from repro.gnn.mbm import mbm_kgnn
from repro.gnn.mqm import mqm_kgnn
from repro.gnn.spm import spm_kgnn
from repro.index.base import IndexCounters
from repro.index.bruteforce import BruteForceIndex
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTree
from repro.index.rtree import RTree
from repro.metrics.quality import PartialAnswerQuality

#: The three classic group-kNN algorithms of [24], selectable per engine.
_ALGORITHMS = {"mbm": mbm_kgnn, "spm": spm_kgnn, "mqm": mqm_kgnn}

#: Selectable index substrates behind the kGNN black box.
INDEX_KINDS = ("rtree", "kdtree", "grid", "bruteforce", "spill", "lsh")

#: Kinds whose query path is candidate-based and carries a recall estimate.
APPROXIMATE_INDEX_KINDS = ("spill", "lsh")

#: Calibration workload: seeded single-point probes measuring recall@k.
_CALIBRATION_QUERIES = 24
_CALIBRATION_K = 8
_CALIBRATION_SEED = 20180326

#: Signature of a pluggable group-query function: (k, locations) -> ranked POIs.
GroupQueryFn = Callable[[int, Sequence[Point]], list[POI]]


class GNNQueryEngine:
    """A spatial-index-backed kGNN engine over a POI database.

    Parameters
    ----------
    pois:
        The LSP database D.
    aggregate:
        The monotone cost function F (default ``sum``, the paper's choice).
    max_entries:
        R-tree fan-out (ignored by the other index kinds).
    algorithm:
        The plaintext kGNN algorithm: ``"mbm"`` (default, the paper's
        choice), ``"spm"``, or ``"mqm"`` — the three methods of [24].
    index:
        Index substrate, one of :data:`INDEX_KINDS` (default ``"rtree"``).
    space:
        The location space (needed by ``"grid"``; defaults to the POIs'
        bounding box when omitted).
    build_workers:
        When > 1 and ``index="rtree"``, bulk-load via the sharded parallel
        STR builder — the resulting tree is byte-identical to a serial
        build, so this is purely a wall-clock knob.
    """

    def __init__(
        self,
        pois: Sequence[POI],
        aggregate: Aggregate = SUM,
        max_entries: int = 32,
        algorithm: str = "mbm",
        index: str = "rtree",
        space: LocationSpace | None = None,
        build_workers: int | None = None,
    ) -> None:
        if not pois:
            raise ConfigurationError("the POI database must be non-empty")
        self.aggregate = aggregate
        self.algorithm = algorithm
        self._kgnn = _ALGORITHMS.get(algorithm)
        if self._kgnn is None:
            raise ConfigurationError(
                f"unknown kGNN algorithm {algorithm!r}; known: {sorted(_ALGORITHMS)}"
            )
        if index not in INDEX_KINDS:
            raise ConfigurationError(
                f"unknown index kind {index!r}; known: {list(INDEX_KINDS)}"
            )
        self.index_kind = index
        self.is_approximate = index in APPROXIMATE_INDEX_KINDS
        self.index_counters = IndexCounters()
        entries = [(poi.location, poi) for poi in pois]
        # `tree` keeps its historical name: callers poke engine.tree for
        # version/height regardless of which substrate is behind it.
        self.tree = self._build_index(index, entries, max_entries, space, build_workers)
        self._by_id = {poi.poi_id: poi for poi in pois}
        if len(self._by_id) != len(pois):
            raise ConfigurationError("duplicate poi_id values in the database")
        #: Measured answer quality of the approximate candidate path
        #: (None for exact indexes).
        self.recall_estimate: PartialAnswerQuality | None = (
            self._calibrate_recall() if self.is_approximate else None
        )
        #: Optional exact-match kGNN result cache (see repro.serve.cache).
        #: None keeps the historical uncached behavior.
        self.knn_cache = None

    @staticmethod
    def _build_index(
        kind: str,
        entries: list[tuple[Point, POI]],
        max_entries: int,
        space: LocationSpace | None,
        build_workers: int | None,
    ):
        if kind == "rtree":
            tree = RTree(max_entries=max_entries)
            if build_workers is not None and build_workers > 1:
                from repro.spatial.str_build import parallel_str_bulk_load

                parallel_str_bulk_load(tree, entries, workers=build_workers)
            else:
                tree.bulk_load(entries)
            return tree
        if kind == "kdtree":
            tree = KDTree()
            tree.bulk_load(entries)
            return tree
        if kind == "grid":
            if space is None:
                space = LocationSpace(Rect.from_points([p for p, _ in entries]))
            cells = max(1, math.ceil(math.sqrt(len(entries) / 8)))
            tree = GridIndex(space, cells_per_side=cells)
            tree.bulk_load(entries)
            return tree
        if kind == "bruteforce":
            tree = BruteForceIndex()
            tree.bulk_load(entries)
            return tree
        if kind == "spill":
            from repro.spatial.parttree import PartitionTree

            tree = PartitionTree(rule="rp", spill=0.25, leaf_capacity=max(
                4 * max_entries, 64
            ))
            tree.bulk_load(entries)
            return tree
        from repro.spatial.lsh import LSHIndex

        tree = LSHIndex()
        tree.bulk_load(entries)
        return tree

    # --------------------------------------------------------------- recall

    def _exact_topk(self, k: int, locations: Sequence[Point]) -> list[int]:
        """Exhaustive reference answer (poi ids) for recall calibration."""
        ranked = sorted(
            (self.aggregate(p.distance_to(q) for q in locations), (p.x, p.y), item.poi_id)
            for p, item in self.tree.entries()
        )
        return [pid for _, _, pid in ranked[:k]]

    def _calibrate_recall(self) -> PartialAnswerQuality:
        """Measure the candidate path's recall@k on a seeded probe workload.

        ``_CALIBRATION_QUERIES`` single-location probes drawn uniformly
        over the data's bounding box; each compares the approximate top-k
        against the exhaustive exact answer.  The mean recall rides along
        with every answer this engine produces, so downstream layers can
        report honest quality instead of assuming exactness.
        """
        mbr = Rect.from_points([p for p, _ in self.tree.entries()])
        rng = np.random.default_rng(_CALIBRATION_SEED)
        k = min(_CALIBRATION_K, len(self.tree))
        total = 0.0
        for _ in range(_CALIBRATION_QUERIES):
            q = Point(
                float(rng.uniform(mbr.xmin, mbr.xmax)),
                float(rng.uniform(mbr.ymin, mbr.ymax)),
            )
            exact = set(self._exact_topk(k, [q]))
            approx = {
                item.poi_id for _, item, _ in self._approximate_kgnn([q], k)
            }
            total += len(approx & exact) / k
        # Calibration probes should not pollute the serving counters.
        self.index_counters = IndexCounters()
        return PartialAnswerQuality(
            coverage=1.0,
            expected_recall=total / _CALIBRATION_QUERIES,
            guaranteed_recall=0.0,
        )

    # ---------------------------------------------------------------- queries

    def _approximate_kgnn(
        self, locations: Sequence[Point], k: int
    ) -> list[tuple[Point, POI, float]]:
        """Candidate-union scoring: the approximate analogue of the kGNN walk.

        Unions :meth:`candidate_entries` over the query locations (deduped
        by poi id), scores each candidate under the aggregate exactly, and
        returns the top-``k`` with the same ``(score, location)`` ordering
        contract as the exact algorithms.
        """
        cands: dict[int, tuple[Point, POI]] = {}
        for q in locations:
            for p, item in self.tree.candidate_entries(q):
                cands.setdefault(item.poi_id, (p, item))
        self.index_counters.candidates_scored += len(cands)
        ranked = sorted(
            (self.aggregate(p.distance_to(q) for q in locations), (p.x, p.y), pid, p, item)
            for pid, (p, item) in cands.items()
        )
        return [(p, item, score) for score, _, _, p, item in ranked[:k]]

    def _run_kgnn(
        self, k: int, locations: Sequence[Point]
    ) -> list[tuple[Point, POI, float]]:
        self.index_counters.queries += 1
        if self.is_approximate:
            return self._approximate_kgnn(locations, k)
        return self._kgnn(
            self.tree, locations, k, self.aggregate, self.index_counters
        )

    def __len__(self) -> int:
        return len(self.tree)

    @property
    def pois(self) -> tuple[POI, ...]:
        """The live database rows in id order (replica-building snapshot)."""
        return tuple(self._by_id[pid] for pid in sorted(self._by_id))

    def poi_by_id(self, poi_id: int) -> POI:
        """Resolve a POI id (used when decoding transmitted answers)."""
        try:
            return self._by_id[poi_id]
        except KeyError:
            raise ConfigurationError(f"unknown poi_id {poi_id}") from None

    def set_knn_cache(self, cache) -> None:
        """Install (or remove, with None) an exact-match kGNN result cache.

        The cache key includes the index's mutation version, so entries
        created before an :meth:`insert`/:meth:`delete` can never serve a
        stale answer afterwards.
        """
        self.knn_cache = cache

    def query(self, k: int, locations: Sequence[Point]) -> list[POI]:
        """Definition 2.1: the top-``k`` POIs by ascending F.

        Exact for the exact index kinds; for approximate kinds the ranking
        is exact *within* the candidate set and ``recall_estimate`` bounds
        how much of the true answer the candidates capture.  ``k`` is
        capped at the database size, mirroring ``k <= D``.  With a cache
        installed, a verbatim repeat of an earlier query (same index
        version, same k, same locations) is served from memory; results
        are identical to the uncached path by construction of the exact
        key.
        """
        k = min(k, len(self.tree))
        cache = self.knn_cache
        if cache is None:
            return [poi for _, poi, _ in self._run_kgnn(k, locations)]
        from repro.serve.cache import knn_cache_key

        key = knn_cache_key(
            self.tree.version,
            self.algorithm,
            self.aggregate.name,
            k,
            locations,
        )
        hit = cache.lookup(key)
        if hit is not None:
            return list(hit)
        result = [poi for _, poi, _ in self._run_kgnn(k, locations)]
        cache.store(key, tuple(result))
        return result

    def query_scored(
        self, k: int, locations: Sequence[Point]
    ) -> list[tuple[POI, float]]:
        """Like :meth:`query` but keeps the aggregate scores (for tests)."""
        k = min(k, len(self.tree))
        return [(poi, score) for _, poi, score in self._run_kgnn(k, locations)]

    # Mutation passthroughs: the dynamic-database story of Section 1.

    def insert(self, poi: POI) -> None:
        """Add a POI to the live database (no precomputation to refresh)."""
        if poi.poi_id in self._by_id:
            raise ConfigurationError(f"poi_id {poi.poi_id} already present")
        self.tree.insert(poi.location, poi)
        self._by_id[poi.poi_id] = poi

    def delete(self, poi: POI) -> bool:
        """Remove a POI; returns False when it was not present.

        The R-tree deletes in place; the other substrates are static
        builds, so deletion filters the entry list and re-bulk-loads —
        correct for every kind, if not cheap for the static ones.
        """
        deleter = getattr(self.tree, "delete", None)
        if deleter is not None:
            removed = deleter(poi.location, poi)
        else:
            remaining = [
                (p, item) for p, item in self.tree.entries() if item != poi
            ]
            removed = len(remaining) != len(self.tree)
            if removed:
                self.tree.bulk_load(remaining)
        if removed:
            del self._by_id[poi.poi_id]
        return removed
