"""The kGNN black box the privacy protocols call.

The PPGNN design treats query answering as an opaque function from
``(k, locations)`` to a ranked POI list (Section 1, novelty 4).  This module
gives that black box a concrete default — MBM over an R-tree — behind an
interface narrow enough that any group query (e.g. a meeting-location
determination algorithm, see ``examples/ppmld.py``) can be swapped in.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.datasets.poi import POI
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.gnn.aggregate import Aggregate, SUM
from repro.gnn.mbm import mbm_kgnn
from repro.gnn.mqm import mqm_kgnn
from repro.gnn.spm import spm_kgnn
from repro.index.rtree import RTree

#: The three classic group-kNN algorithms of [24], selectable per engine.
_ALGORITHMS = {"mbm": mbm_kgnn, "spm": spm_kgnn, "mqm": mqm_kgnn}

#: Signature of a pluggable group-query function: (k, locations) -> ranked POIs.
GroupQueryFn = Callable[[int, Sequence[Point]], list[POI]]


class GNNQueryEngine:
    """An R-tree-backed kGNN engine over a POI database.

    Parameters
    ----------
    pois:
        The LSP database D.
    aggregate:
        The monotone cost function F (default ``sum``, the paper's choice).
    max_entries:
        R-tree fan-out.
    algorithm:
        The plaintext kGNN algorithm: ``"mbm"`` (default, the paper's
        choice), ``"spm"``, or ``"mqm"`` — the three methods of [24].
    """

    def __init__(
        self,
        pois: Sequence[POI],
        aggregate: Aggregate = SUM,
        max_entries: int = 32,
        algorithm: str = "mbm",
    ) -> None:
        if not pois:
            raise ConfigurationError("the POI database must be non-empty")
        self.aggregate = aggregate
        self.algorithm = algorithm
        self._kgnn = _ALGORITHMS.get(algorithm)
        if self._kgnn is None:
            raise ConfigurationError(
                f"unknown kGNN algorithm {algorithm!r}; known: {sorted(_ALGORITHMS)}"
            )
        self.tree = RTree(max_entries=max_entries)
        self.tree.bulk_load((poi.location, poi) for poi in pois)
        self._by_id = {poi.poi_id: poi for poi in pois}
        if len(self._by_id) != len(pois):
            raise ConfigurationError("duplicate poi_id values in the database")
        #: Optional exact-match kGNN result cache (see repro.serve.cache).
        #: None keeps the historical uncached behavior.
        self.knn_cache = None

    def __len__(self) -> int:
        return len(self.tree)

    @property
    def pois(self) -> tuple[POI, ...]:
        """The live database rows in id order (replica-building snapshot)."""
        return tuple(self._by_id[pid] for pid in sorted(self._by_id))

    def poi_by_id(self, poi_id: int) -> POI:
        """Resolve a POI id (used when decoding transmitted answers)."""
        try:
            return self._by_id[poi_id]
        except KeyError:
            raise ConfigurationError(f"unknown poi_id {poi_id}") from None

    def set_knn_cache(self, cache) -> None:
        """Install (or remove, with None) an exact-match kGNN result cache.

        The cache key includes the R-tree's mutation version, so entries
        created before an :meth:`insert`/:meth:`delete` can never serve a
        stale answer afterwards.
        """
        self.knn_cache = cache

    def query(self, k: int, locations: Sequence[Point]) -> list[POI]:
        """Definition 2.1: the top-``k`` POIs by ascending F, exactly.

        ``k`` is capped at the database size, mirroring ``k <= D``.  With a
        cache installed, a verbatim repeat of an earlier query (same tree
        version, same k, same locations) is served from memory; results are
        identical to the uncached path by construction of the exact key.
        """
        k = min(k, len(self.tree))
        cache = self.knn_cache
        if cache is None:
            return [
                poi for _, poi, _ in self._kgnn(self.tree, locations, k, self.aggregate)
            ]
        from repro.serve.cache import knn_cache_key

        key = knn_cache_key(
            self.tree.version,
            self.algorithm,
            self.aggregate.name,
            k,
            locations,
        )
        hit = cache.lookup(key)
        if hit is not None:
            return list(hit)
        result = [
            poi for _, poi, _ in self._kgnn(self.tree, locations, k, self.aggregate)
        ]
        cache.store(key, tuple(result))
        return result

    def query_scored(
        self, k: int, locations: Sequence[Point]
    ) -> list[tuple[POI, float]]:
        """Like :meth:`query` but keeps the aggregate scores (for tests)."""
        k = min(k, len(self.tree))
        return [
            (poi, score)
            for _, poi, score in self._kgnn(self.tree, locations, k, self.aggregate)
        ]

    # Mutation passthroughs: the dynamic-database story of Section 1.

    def insert(self, poi: POI) -> None:
        """Add a POI to the live database (no precomputation to refresh)."""
        if poi.poi_id in self._by_id:
            raise ConfigurationError(f"poi_id {poi.poi_id} already present")
        self.tree.insert(poi.location, poi)
        self._by_id[poi.poi_id] = poi

    def delete(self, poi: POI) -> bool:
        """Remove a POI; returns False when it was not present."""
        removed = self.tree.delete(poi.location, poi)
        if removed:
            del self._by_id[poi.poi_id]
        return removed
