"""Minimum Bounding Method (MBM) for group kNN queries [24].

MBM generalizes best-first kNN to a *group* of query locations: a tree node
is ranked by ``F(mindist(MBR, l_1), ..., mindist(MBR, l_n))``.  Because F
is monotonically increasing and ``mindist`` lower-bounds every real
distance from any point inside the MBR, this value lower-bounds the
aggregate cost of every POI under the node, so best-first order remains
exact.  This is the plaintext kGNN black box run per candidate query by the
LSP (Algorithm 2 line 3).

Like :mod:`repro.gnn.knn` the search is index-agnostic: it walks whatever
hierarchy :meth:`~repro.index.base.SpatialIndex.traversal_roots` exposes,
and falls back to scoring every entry exhaustively for flat indexes —
identical answers, different work, both metered through the optional
:class:`~repro.index.base.IndexCounters`.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Sequence

from repro.errors import ConfigurationError
from repro.geometry.distance import mindist_point_rect
from repro.geometry.point import Point
from repro.gnn.aggregate import Aggregate
from repro.index.base import IndexCounters, SpatialIndex


def _fallback_kgnn(
    tree: SpatialIndex,
    locations: Sequence[Point],
    k: int,
    aggregate: Aggregate,
    counters: IndexCounters | None,
) -> list[tuple[Point, Any, float]]:
    """Score every entry; same ordering contract as the best-first walk."""
    ranked = sorted(
        (aggregate(p.distance_to(q) for q in locations), (p.x, p.y), i, p, item)
        for i, (p, item) in enumerate(tree.entries())
    )
    if counters is not None:
        counters.candidates_scored += len(ranked)
    return [(p, item, score) for score, _, _, p, item in ranked[:k]]


def mbm_kgnn(
    tree: SpatialIndex,
    locations: Sequence[Point],
    k: int,
    aggregate: Aggregate,
    counters: IndexCounters | None = None,
) -> list[tuple[Point, Any, float]]:
    """Exact top-``k`` group nearest neighbors.

    Returns ``(location, item, score)`` triples in ascending aggregate-cost
    order, where ``score = F(dis(p, l_1), ..., dis(p, l_n))``.  Ties break
    deterministically on location.
    """
    if k < 1:
        raise ConfigurationError("k must be positive")
    if not locations:
        raise ConfigurationError("kGNN query needs at least one location")
    roots = tree.traversal_roots()
    if roots is None:
        return _fallback_kgnn(tree, locations, k, aggregate, counters)
    seq = count()
    heap: list[tuple[float, tuple[float, float], int, bool, Any]] = []
    for root in roots:
        if root.mbr is not None:
            bound = aggregate(mindist_point_rect(q, root.mbr) for q in locations)
            heapq.heappush(heap, (bound, (0.0, 0.0), next(seq), False, root))
    result: list[tuple[Point, Any, float]] = []
    while heap and len(result) < k:
        score, _, _, is_point, payload = heapq.heappop(heap)
        if is_point:
            p, item = payload
            result.append((p, item, score))
            continue
        node = payload
        if counters is not None:
            counters.nodes_visited += 1
        if node.is_leaf:
            if counters is not None:
                counters.candidates_scored += len(node.points)
            for p, item in zip(node.points, node.items, strict=True):
                cost = aggregate(p.distance_to(q) for q in locations)
                heapq.heappush(heap, (cost, (p.x, p.y), next(seq), True, (p, item)))
        else:
            for child in node.children:
                if child.mbr is not None:
                    bound = aggregate(
                        mindist_point_rect(q, child.mbr) for q in locations
                    )
                    heapq.heappush(
                        heap,
                        (bound, (child.mbr.xmin, child.mbr.ymin), next(seq), False, child),
                    )
    return result
