"""Best-first k-nearest-neighbor search over any spatial index.

The classic incremental algorithm: a priority queue ordered by ``mindist``
interleaves tree nodes and data points; a point popped from the queue is
guaranteed nearer than everything still enqueued, so the first k popped
points are the exact answer.

The search is index-agnostic: any :class:`~repro.index.base.SpatialIndex`
whose :meth:`~repro.index.base.SpatialIndex.traversal_roots` returns a
node hierarchy (R-tree, grid's synthetic two-level tree, zero-spill
partition trees) is walked best-first; indexes without one (brute force,
LSH) fall back to an exhaustive scan sorted with the same deterministic
tie-breaking, so answers are identical either way — only the work differs.
Pass an :class:`~repro.index.base.IndexCounters` to meter that work.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Iterator

from repro.errors import ConfigurationError
from repro.geometry.distance import mindist_point_rect
from repro.geometry.point import Point
from repro.index.base import IndexCounters, SpatialIndex


def _fallback_stream(
    tree: SpatialIndex, query: Point, counters: IndexCounters | None
) -> Iterator[tuple[float, Point, Any]]:
    """Exhaustive-scan stream for indexes without a traversal hierarchy.

    Scores every entry once, then yields in the same
    ``(distance, location, insertion order)`` order the best-first walk
    produces, keeping stream semantics identical across index kinds.
    """
    ranked = sorted(
        (p.distance_to(query), (p.x, p.y), i, p, item)
        for i, (p, item) in enumerate(tree.entries())
    )
    if counters is not None:
        counters.candidates_scored += len(ranked)
    for dist, _, _, p, item in ranked:
        yield dist, p, item


def incremental_nearest(
    tree: SpatialIndex, query: Point, counters: IndexCounters | None = None
):
    """Yield ``(distance, point, item)`` in ascending distance order, lazily.

    The incremental form of best-first search: consumers pull as many
    neighbors as they need (the MQM group-kNN algorithm advances n such
    streams round-robin).  State lives in the generator's priority queue.
    """
    roots = tree.traversal_roots()
    if roots is None:
        yield from _fallback_stream(tree, query, counters)
        return
    seq = count()
    heap: list[tuple[float, tuple[float, float], int, bool, Any]] = []
    for root in roots:
        if root.mbr is not None:
            heapq.heappush(
                heap,
                (mindist_point_rect(query, root.mbr), (0.0, 0.0), next(seq), False, root),
            )
    while heap:
        dist, _, _, is_point, payload = heapq.heappop(heap)
        if is_point:
            p, item = payload
            yield dist, p, item
            continue
        node = payload
        if counters is not None:
            counters.nodes_visited += 1
        if node.is_leaf:
            if counters is not None:
                counters.candidates_scored += len(node.points)
            for p, item in zip(node.points, node.items, strict=True):
                heapq.heappush(
                    heap, (p.distance_to(query), (p.x, p.y), next(seq), True, (p, item))
                )
        else:
            for child in node.children:
                if child.mbr is not None:
                    heapq.heappush(
                        heap,
                        (
                            mindist_point_rect(query, child.mbr),
                            (child.mbr.xmin, child.mbr.ymin),
                            next(seq),
                            False,
                            child,
                        ),
                    )


def best_first_knn(
    tree: SpatialIndex,
    query: Point,
    k: int,
    counters: IndexCounters | None = None,
) -> list[tuple[Point, Any]]:
    """The ``k`` entries of ``tree`` nearest to ``query``, ascending by distance.

    Ties break deterministically on location then insertion order (via the
    queue sequence number), so repeated runs over the same tree agree.
    """
    if k < 1:
        raise ConfigurationError("k must be positive")
    stream = incremental_nearest(tree, query, counters)
    result: list[tuple[Point, Any]] = []
    for _, p, item in stream:
        result.append((p, item))
        if len(result) == k:
            break
    return result
