"""Best-first k-nearest-neighbor search over an R-tree.

The classic incremental algorithm: a priority queue ordered by ``mindist``
interleaves tree nodes and data points; a point popped from the queue is
guaranteed nearer than everything still enqueued, so the first k popped
points are the exact answer.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any

from repro.errors import ConfigurationError
from repro.geometry.distance import mindist_point_rect
from repro.geometry.point import Point
from repro.index.rtree import RTree


def incremental_nearest(tree: RTree, query: Point):
    """Yield ``(distance, point, item)`` in ascending distance order, lazily.

    The incremental form of best-first search: consumers pull as many
    neighbors as they need (the MQM group-kNN algorithm advances n such
    streams round-robin).  State lives in the generator's priority queue.
    """
    seq = count()
    heap: list[tuple[float, tuple[float, float], int, bool, Any]] = []
    root = tree.root
    if root.mbr is not None:
        heapq.heappush(
            heap, (mindist_point_rect(query, root.mbr), (0.0, 0.0), next(seq), False, root)
        )
    while heap:
        dist, _, _, is_point, payload = heapq.heappop(heap)
        if is_point:
            p, item = payload
            yield dist, p, item
            continue
        node = payload
        if node.is_leaf:
            for p, item in zip(node.points, node.items, strict=True):
                heapq.heappush(
                    heap, (p.distance_to(query), (p.x, p.y), next(seq), True, (p, item))
                )
        else:
            for child in node.children:
                if child.mbr is not None:
                    heapq.heappush(
                        heap,
                        (
                            mindist_point_rect(query, child.mbr),
                            (child.mbr.xmin, child.mbr.ymin),
                            next(seq),
                            False,
                            child,
                        ),
                    )


def best_first_knn(tree: RTree, query: Point, k: int) -> list[tuple[Point, Any]]:
    """The ``k`` entries of ``tree`` nearest to ``query``, ascending by distance.

    Ties break deterministically on location then insertion order (via the
    queue sequence number), so repeated runs over the same tree agree.
    """
    if k < 1:
        raise ConfigurationError("k must be positive")
    # Queue items: (priority, tiebreak point-or-None, seq, kind, payload).
    seq = count()
    heap: list[tuple[float, tuple[float, float], int, bool, Any]] = []
    root = tree.root
    if root.mbr is not None:
        heapq.heappush(
            heap, (mindist_point_rect(query, root.mbr), (0.0, 0.0), next(seq), False, root)
        )
    result: list[tuple[Point, Any]] = []
    while heap and len(result) < k:
        _, _, _, is_point, payload = heapq.heappop(heap)
        if is_point:
            result.append(payload)
            continue
        node = payload
        if node.is_leaf:
            for p, item in zip(node.points, node.items, strict=True):
                heapq.heappush(
                    heap, (p.distance_to(query), (p.x, p.y), next(seq), True, (p, item))
                )
        else:
            for child in node.children:
                if child.mbr is not None:
                    heapq.heappush(
                        heap,
                        (
                            mindist_point_rect(query, child.mbr),
                            (child.mbr.xmin, child.mbr.ymin),
                            next(seq),
                            False,
                            child,
                        ),
                    )
    return result
