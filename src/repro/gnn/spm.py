"""Single Point Method (SPM) for group kNN queries [24].

SPM collapses the query group into one representative point q (the
centroid) and runs a *single* incremental NN stream from q, pruning with a
triangle-inequality lower bound: every unseen POI p has ``dis(p, q)`` at
least the stream's frontier distance, and for the built-in aggregates

- sum:  F(p, Q) >= n * dis(p, q) - sum_i dis(q, l_i)
- max:  F(p, Q) >= dis(p, q) - min_i dis(q, l_i)
- min:  F(p, Q) >= dis(p, q) - max_i dis(q, l_i)

all monotone in ``dis(p, q)`` — so once the bound exceeds the current k-th
best aggregate cost, the exact top-k is complete.  SPM is cheap when the
group is tight around its centroid and degrades for spread groups; the
kGNN-algorithm ablation benchmark quantifies exactly that trade against
MBM and MQM.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.gnn.aggregate import Aggregate
from repro.gnn.knn import incremental_nearest
from repro.index.base import IndexCounters, SpatialIndex

#: Per-aggregate lower bound factory: (n, dists q->users) -> bound(dist_pq).
_BOUNDS: dict[str, Callable[[int, list[float]], Callable[[float], float]]] = {
    "sum": lambda n, dq: (lambda d: n * d - sum(dq)),
    "max": lambda n, dq: (lambda d: d - min(dq)),
    "min": lambda n, dq: (lambda d: d - max(dq)),
}


def centroid(locations: Sequence[Point]) -> Point:
    """The arithmetic mean of the query locations."""
    n = len(locations)
    return Point(
        sum(p.x for p in locations) / n,
        sum(p.y for p in locations) / n,
    )


def spm_kgnn(
    tree: SpatialIndex,
    locations: Sequence[Point],
    k: int,
    aggregate: Aggregate,
    counters: IndexCounters | None = None,
) -> list[tuple[Point, Any, float]]:
    """Exact top-``k`` group nearest neighbors via the single-point method.

    Supports the built-in sum/max/min aggregates (each needs its own
    triangle-inequality bound); same result contract as
    :func:`~repro.gnn.mbm.mbm_kgnn`.
    """
    if k < 1:
        raise ConfigurationError("k must be positive")
    if not locations:
        raise ConfigurationError("kGNN query needs at least one location")
    bound_factory = _BOUNDS.get(aggregate.name)
    if bound_factory is None:
        raise ConfigurationError(
            f"SPM has no distance bound for aggregate {aggregate.name!r}; "
            f"use MBM or MQM for custom aggregates"
        )
    q = centroid(locations)
    dq = [q.distance_to(l) for l in locations]
    bound = bound_factory(len(locations), dq)

    best: list[tuple[float, Point, Any]] = []  # sorted ascending by (score, point)
    for dist_pq, p, item in incremental_nearest(tree, q, counters):
        if len(best) >= k and bound(dist_pq) > best[k - 1][0]:
            break
        score = aggregate(p.distance_to(l) for l in locations)
        best.append((score, p, item))
        best.sort(key=lambda t: (t[0], t[1]))
        del best[k:]
    return [(p, item, score) for score, p, item in best]
