"""Trace analytics: phase attribution, critical paths, SLOs, queue delay.

PR 4 made every layer *emit* telemetry; this module *consumes* it.  Four
consumers, all deterministic (they only ever read logical ticks, exact
operation counts, and the simulated serving clock — never wall time):

- **Phase attribution** — every span's *self* time (its ticks minus its
  children's) is charged to exactly one phase — ``crypto``,
  ``transport``, ``queue``, ``compute``, or ``other`` — by span-name
  prefix.  Self times partition a forest, so phase totals always sum to
  the total root duration (the invariant the property tests fuzz).
- **Critical path** — the root-to-leaf chain with the largest cumulative
  self time, found by exact dynamic programming (unlike
  :func:`~repro.obs.trace.slowest_path`, which is a greedy descent and
  can miss the true maximum).
- **Op-count normalization** — per-query operation counts and an
  analytic modular-multiplication estimate built from the same
  square-and-multiply arithmetic as :mod:`repro.obs.profile`, so cost
  comparisons are hardware-independent (the sentinel's exact counters).
- **SLO evaluation** — latency and error budgets over a
  :class:`~repro.serve.engine.ServingReport`, with burn rates, plus
  queue-delay attribution: on the simulated timeline every job's latency
  is exactly queue wait + service time, so the mean queue wait is the
  mean latency minus the count-weighted mean predicted service time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.crypto.paillier import KeyPair
from repro.errors import ConfigurationError, ReproError
from repro.obs.profile import pow_mul_estimate
from repro.obs.trace import Span, validate_spans

#: Attribution phases, in render order.  Every span lands in exactly one.
PHASES: tuple[str, ...] = ("crypto", "transport", "queue", "compute", "other")

#: Span-name prefixes per phase, checked in order (first match wins).
#: ``uploads`` is the user->LSP upload leg, so its self time is transport
#: even when no Transport object (and hence no ``transport.send`` child)
#: is threaded through the round.
_PHASE_PREFIXES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("crypto", ("coordinator.", "crypto.")),
    ("transport", ("transport.", "uploads")),
    ("queue", ("queue.",)),
    ("compute", ("lsp.",)),
)


def classify_phase(name: str) -> str:
    """The phase a span name belongs to (``other`` when nothing matches)."""
    for phase, prefixes in _PHASE_PREFIXES:
        if name.startswith(prefixes):
            return phase
    return "other"


def self_ticks(spans: Sequence[Span]) -> dict[int, int]:
    """Each span's own logical duration: its ticks minus its children's.

    For a forest produced by a :class:`~repro.obs.trace.Tracer` this is
    never negative (children are strictly nested); hand-built forests
    with overlapping children are clamped at zero rather than allowed to
    steal time from a sibling phase.
    """
    own: dict[int, int] = {span.span_id: span.ticks for span in spans}
    for span in spans:
        if span.parent_id is not None and span.parent_id in own:
            own[span.parent_id] -= span.ticks
    return {span_id: max(0, ticks) for span_id, ticks in own.items()}


@dataclass
class PhaseBreakdown:
    """Per-phase self-tick totals of one span forest (or one subtree).

    ``total`` is the sum over all phases; for a well-formed forest it
    equals the sum of the root spans' tick durations, so attribution
    never invents or loses time.
    """

    ticks: dict[str, int] = field(default_factory=lambda: dict.fromkeys(PHASES, 0))
    by_name: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """Self-ticks across all phases."""
        return sum(self.ticks.values())

    def fraction(self, phase: str) -> float:
        """The phase's share of the total (0.0 on an empty forest)."""
        total = self.total
        return self.ticks[phase] / total if total else 0.0

    def add(self, name: str, ticks: int) -> None:
        """Charge one span's self time to its phase and name."""
        phase = classify_phase(name)
        self.ticks[phase] = self.ticks.get(phase, 0) + ticks
        names = self.by_name.setdefault(phase, {})
        names[name] = names.get(name, 0) + ticks

    def merge(self, other: "PhaseBreakdown") -> None:
        """Fold another breakdown into this one."""
        for phase, ticks in other.ticks.items():
            self.ticks[phase] = self.ticks.get(phase, 0) + ticks
        for phase, names in other.by_name.items():
            mine = self.by_name.setdefault(phase, {})
            for name, ticks in names.items():
                mine[name] = mine.get(name, 0) + ticks

    def to_dict(self) -> dict:
        """JSON form: per-phase ticks, total, and per-name detail."""
        return {
            "ticks": {phase: self.ticks[phase] for phase in sorted(self.ticks)},
            "total": self.total,
            "by_name": {
                phase: {n: names[n] for n in sorted(names)}
                for phase, names in sorted(self.by_name.items())
            },
        }


def attribute_phases(spans: Sequence[Span]) -> PhaseBreakdown:
    """Charge every span's self time to its phase, over the whole forest."""
    validate_spans(spans)
    own = self_ticks(spans)
    breakdown = PhaseBreakdown()
    for span in spans:
        breakdown.add(span.name, own[span.span_id])
    return breakdown


def _children_map(spans: Sequence[Span]) -> dict[int | None, list[Span]]:
    children: dict[int | None, list[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.start, s.span_id))
    return children


def attribute_phases_by_protocol(
    spans: Sequence[Span],
) -> dict[str, PhaseBreakdown]:
    """One :class:`PhaseBreakdown` per protocol, keyed off ``round.*`` spans.

    A round span carries a ``protocol`` attribute
    (:func:`~repro.core.common.publish_round` stamps it); the round's
    whole subtree is attributed to that protocol.  Spans outside any
    round (engine scaffolding) are ignored here — use
    :func:`attribute_phases` for the run-wide view.
    """
    validate_spans(spans)
    own = self_ticks(spans)
    children = _children_map(spans)
    breakdowns: dict[str, PhaseBreakdown] = {}

    def charge(span: Span, breakdown: PhaseBreakdown) -> None:
        breakdown.add(span.name, own[span.span_id])
        for child in children.get(span.span_id, []):
            charge(child, breakdown)

    for span in spans:
        if span.name.startswith("round."):
            protocol = str(span.attrs.get("protocol", span.name[len("round."):]))
            charge(span, breakdowns.setdefault(protocol, PhaseBreakdown()))
    return breakdowns


def critical_path(spans: Sequence[Span]) -> tuple[list[Span], int]:
    """The root-to-leaf chain maximizing cumulative *self* ticks, exactly.

    Returns ``(path, duration)`` where ``duration`` is the sum of the
    path spans' self times — always <= the forest's total duration, since
    a path's self times are a subset of the forest's (the property the
    ``test_analyze_property`` suite fuzzes).  Dynamic programming over
    the tree, so unlike the greedy :func:`~repro.obs.trace.slowest_path`
    it cannot be lured down a heavy child whose subtree is shallow.
    """
    validate_spans(spans)
    if not spans:
        return [], 0
    own = self_ticks(spans)
    children = _children_map(spans)
    best: dict[int, int] = {}

    def solve(span: Span) -> int:
        cached = best.get(span.span_id)
        if cached is not None:
            return cached
        below = [solve(child) for child in children.get(span.span_id, [])]
        score = own[span.span_id] + (max(below) if below else 0)
        best[span.span_id] = score
        return score

    roots = children.get(None, [])
    if not roots:
        # Cyclic-free but rootless input is rejected by validate_spans
        # only when a parent id is missing entirely; an empty root set
        # here means the forest was empty after all.
        return [], 0
    cursor = max(roots, key=lambda s: (solve(s), -s.start))
    path = [cursor]
    duration = own[cursor.span_id]
    while True:
        below = children.get(cursor.span_id, [])
        if not below:
            return path, duration
        cursor = max(below, key=lambda s: (solve(s), -s.start))
        path.append(cursor)
        duration += own[cursor.span_id]


def render_attribution(spans: Sequence[Span]) -> str:
    """The per-phase attribution tree the ``repro analyze`` CLI prints.

    Every phase is listed (zero or not, so the reader sees what was
    measured), with a per-span-name breakdown underneath, the heaviest
    phase flagged with ``*``, and the exact critical path as a footer.
    """
    breakdown = attribute_phases(spans)
    total = breakdown.total
    heavy = max(PHASES, key=lambda p: breakdown.ticks.get(p, 0)) if total else None
    lines = [f"phase attribution ({total} self-ticks total)"]
    for phase in PHASES:
        ticks = breakdown.ticks.get(phase, 0)
        marker = "*" if phase == heavy and ticks else " "
        lines.append(
            f"{marker} {phase:<10} {ticks:>6} ticks  "
            f"{breakdown.fraction(phase):>6.1%}"
        )
        for name, name_ticks in sorted(
            breakdown.by_name.get(phase, {}).items(), key=lambda kv: (-kv[1], kv[0])
        ):
            lines.append(f"      {name:<28} {name_ticks:>6}")
    path, duration = critical_path(spans)
    if path:
        lines.append("")
        lines.append(
            "critical path: "
            + " -> ".join(span.name for span in path)
            + f" ({duration} self-ticks)"
        )
    return "\n".join(lines)


# --------------------------------------------------------------- op counts


def normalized_ops(
    counters: Mapping[str, float], queries: int
) -> dict[str, float]:
    """Per-query operation counts from a metrics snapshot's counters.

    Only the deterministic crypto/LSP counters are normalized; dividing
    by the completed-query count makes runs of different lengths (and the
    paper's per-query tables) directly comparable.
    """
    if queries <= 0:
        raise ConfigurationError("normalized_ops needs a positive query count")
    names = (
        "crypto.encryptions",
        "crypto.decryptions.crt",
        "crypto.decryptions.generic",
        "crypto.scalar_muls",
        "crypto.additions",
        "lsp.kgnn_queries",
    )
    return {
        name: counters.get(name, 0.0) / queries
        for name in names
        if name in counters
    }


def estimate_modmuls(counters: Mapping[str, float], keypair: KeyPair) -> dict:
    """Analytic modular-multiplication totals from exact op counters.

    Uses the same square-and-multiply arithmetic as
    :class:`~repro.obs.profile.ProfiledPublicKey` /
    :class:`~repro.obs.profile.ProfiledPrivateKey` at level ``s=1`` (the
    level every PPGNN/naive operation and the dominant PPGNN-OPT
    operations run at): an encryption pays the nonce exponentiation
    ``r^N mod N^2`` (windowed when the fast paths are on, with the
    odd-power table under its own ``.tables`` key) plus the binomial
    expansion and combine multiply, a CRT decryption two half-size
    exponentiations with ``(p-1)`` / ``(q-1)`` exponents, a generic
    decryption one full-size exponentiation with ``lambda``.
    Deterministic given the seeded key pair and the counters, so the
    sentinel treats the total as an exact counter — and for a pure s=1
    workload it equals the profiler's ``bigint_muls`` ledger exactly
    (asserted in tests).
    """
    from repro.crypto import fastexp

    public, secret = keypair.public_key, keypair.secret_key
    bits = public.key_bits
    if fastexp.enabled():
        nonce_plan = public.nonce_plan(1)
        per_encrypt = nonce_plan.chain_muls + 3
        per_encrypt_tables = nonce_plan.table_muls
        plan_p, plan_q = secret.prime_plans()
        per_crt = plan_p.chain_muls + plan_q.chain_muls
        per_crt_tables = plan_p.table_muls + plan_q.table_muls
    else:
        nonce_muls, _ = pow_mul_estimate(public.n_pow(1), 2 * bits)
        per_encrypt = nonce_muls + 3
        per_encrypt_tables = 0
        per_crt_p, _ = pow_mul_estimate(secret.p - 1, bits)
        per_crt_q, _ = pow_mul_estimate(secret.q - 1, bits)
        per_crt = per_crt_p + per_crt_q
        per_crt_tables = 0
    per_generic, _ = pow_mul_estimate(secret.lam, 2 * bits)
    encryptions = counters.get("crypto.encryptions", 0)
    crt = counters.get("crypto.decryptions.crt", 0)
    generic = counters.get("crypto.decryptions.generic", 0)
    breakdown = {
        "encrypt": int(encryptions * per_encrypt),
        "encrypt.tables": int(encryptions * per_encrypt_tables),
        "decrypt.crt": int(crt * per_crt),
        "decrypt.crt.tables": int(crt * per_crt_tables),
        "decrypt.generic": int(generic * per_generic),
    }
    breakdown["total"] = sum(breakdown.values())
    return breakdown


# ----------------------------------------------------------- serving SLOs


@dataclass(frozen=True)
class SLOPolicy:
    """Service-level objectives for one serving run.

    Latency budgets are in simulated seconds (``None`` disables the
    objective); ``error_budget`` is the tolerated fraction of jobs that
    may fail or be rejected; ``queue_wait_budget`` bounds the mean
    simulated queue wait.
    """

    latency_p50: float | None = None
    latency_p95: float | None = None
    latency_p99: float | None = None
    error_budget: float = 0.01
    queue_wait_budget: float | None = None

    def __post_init__(self) -> None:
        for name in ("latency_p50", "latency_p95", "latency_p99",
                     "queue_wait_budget"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(f"{name} must be positive or None")
        if not 0 <= self.error_budget <= 1:
            raise ConfigurationError("error_budget must be in [0, 1]")


@dataclass(frozen=True)
class SLOResult:
    """One objective's verdict: target vs. actual, with a burn rate.

    ``burn_rate`` is ``actual / budget`` — below 1.0 the objective holds,
    at 2.0 the run consumed its budget twice over.
    """

    objective: str
    budget: float
    actual: float
    ok: bool
    burn_rate: float

    def to_dict(self) -> dict:
        """JSON form of this objective's verdict."""
        return {
            "objective": self.objective,
            "budget": self.budget,
            "actual": round(self.actual, 9),
            "ok": self.ok,
            "burn_rate": round(self.burn_rate, 9),
        }


@dataclass
class SLOReport:
    """All evaluated objectives of one run."""

    results: list[SLOResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every objective held."""
        return all(result.ok for result in self.results)

    def to_dict(self) -> dict:
        """JSON form of the whole evaluation."""
        return {"ok": self.ok, "results": [r.to_dict() for r in self.results]}

    def render(self) -> str:
        """The human-readable verdict table."""
        if not self.results:
            return "slo: no objectives configured"
        lines = ["slo evaluation:"]
        for result in self.results:
            verdict = "ok" if result.ok else "VIOLATED"
            lines.append(
                f"  {result.objective:<18} budget {result.budget:<10g} "
                f"actual {result.actual:<12.6g} burn {result.burn_rate:>6.2f}x "
                f"{verdict}"
            )
        return "\n".join(lines)


def _report_dict(report) -> dict:
    """Accept a ServingReport or its ``to_dict`` form."""
    if hasattr(report, "to_dict"):
        return report.to_dict()
    if isinstance(report, Mapping):
        return dict(report)
    raise ConfigurationError(
        "expected a ServingReport or its to_dict() mapping, got "
        f"{type(report).__name__}"
    )


def evaluate_slo(report, policy: SLOPolicy) -> SLOReport:
    """Evaluate a policy against a serving report (object or dict)."""
    data = _report_dict(report)
    latency = data["latency"]
    slo = SLOReport()

    def latency_objective(name: str, budget: float | None, actual: float) -> None:
        if budget is None:
            return
        slo.results.append(
            SLOResult(
                objective=name,
                budget=budget,
                actual=actual,
                ok=actual <= budget,
                burn_rate=actual / budget,
            )
        )

    latency_objective("latency_p50", policy.latency_p50, latency["p50"])
    latency_objective("latency_p95", policy.latency_p95, latency["p95"])
    latency_objective("latency_p99", policy.latency_p99, latency["p99"])

    total = data["queries"]
    errors = data["failed"] + data["rejected"]
    error_fraction = errors / total if total else 0.0
    # A zero budget means "no errors tolerated": burn is 0 when clean,
    # infinite-flavored (count-based) when not.
    burn = (
        error_fraction / policy.error_budget
        if policy.error_budget > 0
        else float(errors)
    )
    slo.results.append(
        SLOResult(
            objective="error_fraction",
            budget=policy.error_budget,
            actual=error_fraction,
            ok=error_fraction <= policy.error_budget,
            burn_rate=burn,
        )
    )

    if policy.queue_wait_budget is not None:
        wait = queue_delay_summary(data).mean_queue_wait
        slo.results.append(
            SLOResult(
                objective="mean_queue_wait",
                budget=policy.queue_wait_budget,
                actual=wait,
                ok=wait <= policy.queue_wait_budget,
                burn_rate=wait / policy.queue_wait_budget,
            )
        )
    return slo


@dataclass(frozen=True)
class QueueDelaySummary:
    """Where a serving run's latency went: queueing vs. service.

    On the engine's simulated timeline each job's latency is *exactly*
    queue wait plus predicted service time, so the mean queue wait is the
    mean latency minus the count-weighted mean predicted service time —
    an identity, not an approximation.
    """

    mean_latency: float
    mean_service: float
    mean_queue_wait: float
    queue_fraction: float
    max_queue_depth: int
    mean_queue_depth: float

    def to_dict(self) -> dict:
        """JSON form of the latency split."""
        return {
            "mean_latency": round(self.mean_latency, 9),
            "mean_service": round(self.mean_service, 9),
            "mean_queue_wait": round(self.mean_queue_wait, 9),
            "queue_fraction": round(self.queue_fraction, 9),
            "max_queue_depth": self.max_queue_depth,
            "mean_queue_depth": round(self.mean_queue_depth, 9),
        }

    def render(self) -> str:
        """One-line human-readable summary."""
        return (
            f"queue delay: {self.mean_queue_wait:.6g}s of "
            f"{self.mean_latency:.6g}s mean latency "
            f"({self.queue_fraction:.1%}) spent queued; "
            f"depth max {self.max_queue_depth} / "
            f"mean {self.mean_queue_depth:.2f}"
        )


def queue_delay_summary(report) -> QueueDelaySummary:
    """Split a serving report's mean latency into queue wait and service."""
    data = _report_dict(report)
    per_protocol = data.get("per_protocol", {})
    planned = sum(entry["count"] for entry in per_protocol.values())
    service = sum(
        entry["count"] * entry["mean_predicted_seconds"]
        for entry in per_protocol.values()
    )
    mean_service = service / planned if planned else 0.0
    mean_latency = data["latency"]["mean"]
    # Guard against float dust: waits are nonnegative by construction.
    mean_wait = max(0.0, mean_latency - mean_service)
    queue = data["queue"]
    return QueueDelaySummary(
        mean_latency=mean_latency,
        mean_service=mean_service,
        mean_queue_wait=mean_wait,
        queue_fraction=mean_wait / mean_latency if mean_latency else 0.0,
        max_queue_depth=queue["max_depth"],
        mean_queue_depth=queue["mean_depth"],
    )


# ------------------------------------------------------------ full report


def analyze_serve_report(
    report, policy: SLOPolicy | None = None
) -> str:
    """The ``repro analyze`` rendering for one serving report.

    Sections: per-phase attribution (when the report embeds an ``obs``
    payload with spans), queue-delay attribution, per-query operation
    counts, and the SLO evaluation (when a policy is given).
    """
    data = _report_dict(report)
    sections: list[str] = []
    obs = data.get("obs")
    counters = (obs or {}).get("metrics", {}).get("counters", {})
    dropped = counters.get("obs.trace.spans_dropped", 0)
    if dropped:
        sections.append(
            f"WARNING: {int(dropped)} span(s) dropped by the trace ring "
            "buffer — attribution, critical paths, and exemplar links "
            "below describe a truncated trace; raise trace_capacity to "
            "capture the full run"
        )
    if obs and obs.get("spans"):
        spans = [Span.from_dict(item) for item in obs["spans"]]
        sections.append(render_attribution(spans))
    else:
        sections.append(
            "phase attribution: no spans embedded "
            "(run with obs enabled, e.g. serve-bench --obs)"
        )
    sections.append(queue_delay_summary(data).render())
    completed = data.get("completed", 0)
    if counters and completed:
        ops = normalized_ops(counters, completed)
        if ops:
            lines = [f"per-query ops ({completed} completed):"]
            for name in sorted(ops):
                lines.append(f"  {name:<28} {ops[name]:>12.2f}")
            sections.append("\n".join(lines))
    if policy is not None:
        sections.append(evaluate_slo(data, policy).render())
    return "\n\n".join(sections)


def load_report_document(text: str) -> dict:
    """Extract a serving-report dict from raw JSON text.

    Accepts either a bare ``ServingReport.to_dict()`` document or a
    ``BENCH_*.json`` envelope (``{"experiment": ..., "results": ...}``)
    whose results are a report — directly, or under a ``serial`` /
    ``process`` executor key (the throughput bench records both; the
    process run is preferred as the headline configuration).
    """
    import json

    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"report does not parse as JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ReproError("report JSON must be an object")
    candidates = [document]
    results = document.get("results")
    if isinstance(results, dict):
        candidates.append(results)
        for key in ("process", "serial"):
            nested = results.get(key)
            if isinstance(nested, dict):
                candidates.append(nested)
    for candidate in candidates:
        if "latency" in candidate and "queue" in candidate:
            return candidate
    raise ReproError(
        "no serving report found in document (expected to_dict() output "
        "or a BENCH_*.json envelope containing one)"
    )


def render_exemplars(report) -> str:
    """Resolve histogram exemplars into rendered span traces.

    For every histogram bucket that recorded an exemplar (the span id of
    its worst observation), looks the span up in the report's embedded
    trace and renders its subtree — the ``repro analyze --exemplars``
    view that turns "p99 regressed" into "here is the exact query that
    landed in that bucket, slowest path flagged".
    """
    from repro.obs.trace import render_span_tree

    data = _report_dict(report)
    obs = data.get("obs")
    if not obs:
        raise ReproError(
            "report embeds no obs payload; run with observability enabled "
            "(e.g. serve-bench --obs)"
        )
    histograms = obs.get("metrics", {}).get("histograms", {})
    exemplared = {
        name: hist for name, hist in histograms.items() if hist.get("exemplars")
    }
    if not exemplared:
        raise ReproError(
            "no exemplars recorded in this report; enable them with "
            "ServeConfig(exemplars=True) (they are off by default to keep "
            "reports byte-identical)"
        )
    spans = [Span.from_dict(item) for item in obs.get("spans", [])]
    by_id = {span.span_id: span for span in spans}
    children: dict[int | None, list[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)

    sections: list[str] = []
    for name in sorted(exemplared):
        hist = exemplared[name]
        bounds = list(hist.get("buckets", []))
        for bucket_key in sorted(hist["exemplars"], key=int):
            entry = hist["exemplars"][bucket_key]
            index = int(bucket_key)
            label = (
                f"<= {bounds[index]:g}" if index < len(bounds) else "overflow"
            )
            header = (
                f"{name} bucket {label}: worst value {entry['value']:g}, "
                f"exemplar span {entry['span']}"
            )
            root = by_id.get(entry["span"])
            if root is None:
                sections.append(
                    header + " (span missing from the trace — the ring "
                    "buffer dropped it; raise trace_capacity)"
                )
                continue
            # Render the exemplar's subtree as its own rooted forest.
            subtree = [
                Span(
                    span_id=root.span_id,
                    parent_id=None,
                    name=root.name,
                    start=root.start,
                    end=root.end,
                    attrs=dict(root.attrs),
                )
            ]
            frontier = [root.span_id]
            while frontier:
                parent = frontier.pop()
                for child in children.get(parent, []):
                    subtree.append(child)
                    frontier.append(child.span_id)
            sections.append(header + "\n" + render_span_tree(subtree))
    return "\n\n".join(sections)
