"""Trend analytics over the run ledger: changepoints, bands, sparklines.

Two regimes, matching the sentinel's metric taxonomy
(:func:`repro.bench.sentinel.classify_metric`):

- **exact** counters are deterministic functions of the seeded workload,
  so the detector is zero-tolerance: *any* step between consecutive
  ledger records is a changepoint, attributed to the first commit where
  the value moved, with that run's phase breakdown attached so the
  verdict says not just *when* but *what the run was doing*;
- **timing** metrics are host-noise-prone, so each point is judged
  against a rolling-median ± 3·MAD tolerance band over its trailing
  window — outliers are informational, never a gate failure.

A regressed exact step fails ``repro trend --check`` unless the record
that introduced it lists the metric in its ``accepted`` note.  Records
are compared within one *config lineage* (same ``config_digest``): a
workload change is a different experiment, not a regression.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import Iterable, Mapping, Sequence

from repro.bench.sentinel import classify_metric
from repro.obs.series import LedgerRecord, RunLedger, sort_records

#: Eight-level unicode bars, min-to-max normalized per series.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: Consistency-scale factor turning a MAD into a robust sigma estimate.
_MAD_SIGMA = 1.4826


def sparkline(values: Sequence[float]) -> str:
    """A unicode sparkline of the series (constant series render flat)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return SPARK_CHARS[3] * len(values)
    top = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[round((value - lo) / (hi - lo) * top)] for value in values
    )


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _phase_label(phases: Mapping[str, int] | None) -> str | None:
    """``"crypto (62% of traced ticks)"`` for the dominant phase, or None."""
    if not phases:
        return None
    total = sum(phases.values())
    if total <= 0:
        return None
    name, ticks = max(sorted(phases.items()), key=lambda item: item[1])
    return f"{name} ({ticks / total:.0%} of traced ticks)"


@dataclass(frozen=True)
class Changepoint:
    """One exact counter stepping between consecutive ledger records."""

    suite: str
    metric: str
    direction: str  # lower | higher | fixed
    status: str  # regressed | improved
    prev_value: float
    value: float
    prev_sha: str
    git_sha: str  # first commit where the value moved
    seq: int
    accepted: bool
    phases: dict[str, int] | None

    @property
    def phase(self) -> str | None:
        """The offending run's dominant phase, human-rendered."""
        return _phase_label(self.phases)

    def describe(self) -> str:
        delta = self.value - self.prev_value
        parts = [
            f"{self.metric} {_fmt(self.prev_value)} -> {_fmt(self.value)} "
            f"({delta:+.6g}) first {'bad' if self.status == 'regressed' else 'good'} "
            f"commit `{self.git_sha[:12]}`"
        ]
        if self.phase is not None:
            parts.append(f"— phase {self.phase}")
        if self.accepted:
            parts.append("[accepted]")
        return " ".join(parts)


@dataclass(frozen=True)
class TimingFlag:
    """One timing metric landing outside its rolling tolerance band."""

    suite: str
    metric: str
    git_sha: str
    seq: int
    value: float
    median: float
    band: float


def lineages(
    records: Iterable[LedgerRecord],
) -> dict[str, list[LedgerRecord]]:
    """Records grouped by config digest, each group in append order."""
    grouped: dict[str, list[LedgerRecord]] = {}
    for record in sort_records(records):
        grouped.setdefault(record.config_digest, []).append(record)
    return grouped


def dominant_lineage(
    records: Iterable[LedgerRecord],
) -> tuple[str, list[LedgerRecord]]:
    """The lineage with the most records (latest append breaks ties)."""
    grouped = lineages(records)
    if not grouped:
        return "", []
    digest = max(
        grouped,
        key=lambda d: (len(grouped[d]), grouped[d][-1].seq),
    )
    return digest, grouped[digest]


def _metric_series(
    records: Sequence[LedgerRecord], metric: str
) -> list[tuple[LedgerRecord, float]]:
    return [(r, float(r.metrics[metric])) for r in records if metric in r.metrics]


def _metric_names(records: Sequence[LedgerRecord]) -> list[str]:
    names: set[str] = set()
    for record in records:
        names.update(record.metrics)
    return sorted(names)


def detect_changepoints(
    records: Sequence[LedgerRecord], suite: str | None = None
) -> list[Changepoint]:
    """Every exact-counter step within one lineage, in series order.

    Attribution is ordering-invariant by construction: records compare
    in ``seq`` (append) order, so shuffling the ledger file's lines
    never moves a changepoint to a different commit.
    """
    ordered = sort_records(records)
    if not ordered:
        return []
    label = suite if suite is not None else ordered[0].suite
    changepoints: list[Changepoint] = []
    for metric in _metric_names(ordered):
        if classify_metric(metric).kind != "exact":
            continue
        direction = classify_metric(metric).direction
        series = _metric_series(ordered, metric)
        for (prev, prev_value), (current, value) in zip(series, series[1:]):
            diff = value - prev_value
            if diff == 0:
                continue
            if direction == "fixed":
                status = "regressed"
            else:
                better = diff < 0 if direction == "lower" else diff > 0
                status = "improved" if better else "regressed"
            changepoints.append(
                Changepoint(
                    suite=label,
                    metric=metric,
                    direction=direction,
                    status=status,
                    prev_value=prev_value,
                    value=value,
                    prev_sha=prev.git_sha,
                    git_sha=current.git_sha,
                    seq=current.seq,
                    accepted=metric in current.accepted,
                    phases=current.phases,
                )
            )
    return changepoints


def timing_flags(
    records: Sequence[LedgerRecord], window: int = 8
) -> list[TimingFlag]:
    """Timing metrics outside their rolling-median ± 3·MAD band.

    Each point is judged against the ``window`` trailing values before
    it; the first three points of a series are never flagged (no band to
    judge against).  The band floors at 10% of the rolling median so a
    near-zero MAD (identical recorded timings) does not flag ordinary
    jitter.
    """
    ordered = sort_records(records)
    flags: list[TimingFlag] = []
    for metric in _metric_names(ordered):
        if classify_metric(metric).kind != "timing":
            continue
        series = _metric_series(ordered, metric)
        values = [value for _, value in series]
        for i, (record, value) in enumerate(series):
            if i < 3:
                continue
            trailing = values[max(0, i - window) : i]
            center = median(trailing)
            mad = median(abs(v - center) for v in trailing)
            band = max(3 * _MAD_SIGMA * mad, 0.1 * max(abs(center), 1e-9))
            if abs(value - center) > band:
                flags.append(
                    TimingFlag(
                        suite=record.suite,
                        metric=metric,
                        git_sha=record.git_sha,
                        seq=record.seq,
                        value=value,
                        median=center,
                        band=band,
                    )
                )
    return flags


def best_exemplar(record: LedgerRecord) -> dict | None:
    """The slowest recorded exemplar riding in a record's obs snapshot.

    Scans the snapshot's histograms for exemplar entries (span ids
    attached to bucket observations) and returns the one from the
    highest bucket — the concrete trace behind the worst latency this
    run observed — as ``{"histogram", "bucket", "value", "span"}``.
    """
    if not record.obs:
        return None
    best: dict | None = None
    for name in sorted(record.obs.get("histograms", {})):
        histogram = record.obs["histograms"][name]
        for bucket in sorted(
            histogram.get("exemplars", {}), key=lambda b: int(b)
        ):
            entry = histogram["exemplars"][bucket]
            if best is None or entry["value"] > best["value"]:
                best = {
                    "histogram": name,
                    "bucket": int(bucket),
                    "value": entry["value"],
                    "span": entry["span"],
                }
    return best


@dataclass
class TrendCheck:
    """The full ``repro trend --check`` verdict across suites."""

    suites: list[str]
    changepoints: list[Changepoint]
    flags: list[TimingFlag]

    @property
    def unexplained(self) -> list[Changepoint]:
        """Regressed exact steps not accepted by the record that moved."""
        return [
            cp
            for cp in self.changepoints
            if cp.status == "regressed" and not cp.accepted
        ]

    @property
    def ok(self) -> bool:
        return not self.unexplained


def check_ledger(
    ledger: RunLedger,
    suites: Sequence[str] | None = None,
    window: int = 8,
) -> TrendCheck:
    """Run the changepoint and band detectors over ledger suites."""
    names = list(suites) if suites else ledger.suites()
    changepoints: list[Changepoint] = []
    flags: list[TimingFlag] = []
    for suite in names:
        _, lineage = dominant_lineage(ledger.load(suite))
        changepoints.extend(detect_changepoints(lineage, suite))
        flags.extend(timing_flags(lineage, window))
    return TrendCheck(suites=names, changepoints=changepoints, flags=flags)


def render_check(check: TrendCheck) -> str:
    """The terminal verdict ``repro trend --check`` prints."""
    lines = [
        f"trend check: {len(check.suites)} suite(s), "
        f"{len(check.changepoints)} exact changepoint(s), "
        f"{len(check.unexplained)} unexplained regression(s), "
        f"{len(check.flags)} timing outlier(s)"
    ]
    for cp in check.changepoints:
        marker = (
            "regressed"
            if cp.status == "regressed" and not cp.accepted
            else ("accepted " if cp.accepted else "improved ")
        )
        lines.append(f"  {cp.suite}: {marker} {cp.describe()}")
    for flag in check.flags:
        lines.append(
            f"  {flag.suite}: timing    {flag.metric} {_fmt(flag.value)} "
            f"outside {_fmt(flag.median)} ± {_fmt(flag.band)} at "
            f"`{flag.git_sha[:12]}`"
        )
    lines.append("verdict: " + ("PASS" if check.ok else "FAIL"))
    return "\n".join(lines)


def _metric_flags(
    metric: str,
    changepoints: Sequence[Changepoint],
    flags: Sequence[TimingFlag],
    records: Sequence[LedgerRecord],
) -> str:
    parts: list[str] = []
    for cp in changepoints:
        if cp.metric != metric:
            continue
        badge = "✅" if cp.status == "improved" else ("∙" if cp.accepted else "❌")
        note = f"{badge} {cp.value - cp.prev_value:+.6g} at `{cp.git_sha[:12]}`"
        if cp.status == "regressed" and cp.phase is not None:
            note += f" (phase {cp.phase.split(' ')[0]})"
        parts.append(note)
    by_seq = {record.seq: record for record in records}
    for flag in flags:
        if flag.metric != metric:
            continue
        note = f"⚠ outlier at `{flag.git_sha[:12]}`"
        exemplar = best_exemplar(by_seq[flag.seq]) if flag.seq in by_seq else None
        if exemplar is not None:
            note += (
                f", exemplar span {exemplar['span']} in "
                f"`{exemplar['histogram']}` — `repro analyze --exemplars`"
            )
        parts.append(note)
    return "; ".join(parts) if parts else "·"


def render_trends(
    ledger: RunLedger,
    suites: Sequence[str] | None = None,
    window: int = 8,
) -> str:
    """The per-suite markdown dashboard (``BENCH_TRENDS.md``)."""
    names = list(suites) if suites else ledger.suites()
    total = sum(len(ledger.load(suite)) for suite in names)
    lines = [
        "# Performance trends",
        "",
        f"Cross-commit run ledger: {len(names)} suite(s), {total} record(s) "
        "under `benchmarks/series/`.",
        "Exact counters are zero-tolerance — any step is flagged and "
        "attributed to the first commit where the value moved, with that "
        "run's phase breakdown.  Timing metrics are judged against a "
        f"rolling-median ± 3·MAD band over the trailing {window} records.",
        "",
        "Maintained by `repro trend --report`; appended to by "
        "`repro trend --append` and the bench sentinel.",
    ]
    for suite in names:
        records = ledger.load(suite)
        digest, lineage = dominant_lineage(records)
        if not lineage:
            continue
        changepoints = detect_changepoints(lineage, suite)
        flags = timing_flags(lineage, window)
        lines.append("")
        lines.append(f"## `{suite}`")
        lines.append("")
        summary = (
            f"{len(lineage)} record(s) · commits "
            f"`{lineage[0].git_sha[:12]}` → `{lineage[-1].git_sha[:12]}` · "
            f"config `{digest}`"
        )
        other = len(records) - len(lineage)
        if other:
            summary += f" (+{other} record(s) in other config lineages)"
        lines.append(summary)
        lines.append("")
        lines.append("| metric | kind | trend | first | latest | Δ | flags |")
        lines.append("|---|---|---|---:|---:|---:|---|")
        for metric in _metric_names(lineage):
            series = _metric_series(lineage, metric)
            values = [value for _, value in series]
            if not values:
                continue
            spec = classify_metric(metric)
            delta = values[-1] - values[0]
            lines.append(
                f"| `{metric}` | {spec.kind} | {sparkline(values)} "
                f"| {_fmt(values[0])} | {_fmt(values[-1])} | {delta:+.6g} "
                f"| {_metric_flags(metric, changepoints, flags, lineage)} |"
            )
    lines.append("")
    return "\n".join(lines)
