"""Hierarchical spans on a deterministic logical clock.

A :class:`Tracer` produces :class:`Span` trees — session → protocol round
→ crypto / transport / cache steps — timestamped by a *logical tick
counter* instead of wall time: every span start and finish advances the
clock by one, so two runs that execute the same call sequence emit
byte-identical traces (the same reproducibility contract the serving
engine's simulated clock follows).  Real durations are nondeterministic
and therefore never part of a span's identity; deterministic *costs*
(operation counts, predicted seconds) ride along as attributes.

Completed spans land in a bounded ring buffer (oldest evicted first).
Because a parent always finishes after its children, eviction can never
orphan a retained span: if a child is in the buffer, its parent finished
later and is in the buffer too.

Export is JSONL — one span object per line — consumed by the
``repro trace`` CLI subcommand, which rebuilds the tree, renders it, and
flags the slowest root-to-leaf path by cumulative cost.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import ConfigurationError, ReproError


@dataclass
class Span:
    """One traced operation: a named interval on the logical clock."""

    span_id: int
    parent_id: int | None
    name: str
    start: int
    end: int | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def ticks(self) -> int:
        """Logical duration: the number of trace events inside this span."""
        return (self.end - self.start) if self.end is not None else 0

    @property
    def cost(self) -> float:
        """The span's deterministic cost: an explicit ``cost`` attr, else ticks."""
        explicit = self.attrs.get("cost")
        return float(explicit) if explicit is not None else float(self.ticks)

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on an open or closed span."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            name=data["name"],
            start=data["start"],
            end=data.get("end"),
            attrs=dict(data.get("attrs", {})),
        )


class Tracer:
    """Produces nested spans over a deterministic tick clock."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ConfigurationError("tracer capacity must be positive")
        self.capacity = capacity
        self._clock = 0
        self._next_id = 1
        self._stack: list[Span] = []
        self._finished: deque[Span] = deque(maxlen=capacity)
        self.dropped = 0

    def _tick(self) -> int:
        now = self._clock
        self._clock += 1
        return now

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a child span of the innermost open span (or a new root)."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent,
            name=name,
            start=self._tick(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end = self._tick()
            if len(self._finished) == self._finished.maxlen:
                self.dropped += 1
            self._finished.append(span)

    def spans(self) -> list[Span]:
        """Completed spans, in finish order (children before their parent)."""
        return list(self._finished)

    def export_jsonl(self) -> str:
        """One JSON object per line, finish order."""
        return "\n".join(json.dumps(s.to_dict(), sort_keys=True) for s in self.spans())


def _span_from_line(data: object, line_no: int) -> Span:
    """Build a Span from one decoded JSONL line, with strict field checks.

    Interleaved writes from two processes (or a corrupted file) can
    produce lines that *are* valid JSON but are not span objects — a bare
    number, a list, a dict with a string ``start``.  Without these checks
    such lines crash later, deep inside rendering arithmetic; with them
    the error names the line and the offending field.
    """
    if not isinstance(data, dict):
        raise ReproError(
            f"trace line {line_no} is valid JSON but not a span object "
            f"(got {type(data).__name__}); was this file written by "
            "interleaved processes?"
        )
    span = Span.from_dict(data)
    for label, value, optional in (
        ("span_id", span.span_id, False),
        ("start", span.start, False),
        ("end", span.end, True),
        ("parent_id", span.parent_id, True),
    ):
        if optional and value is None:
            continue
        if not isinstance(value, int) or isinstance(value, bool):
            raise ReproError(
                f"trace line {line_no} field {label!r} must be an integer, "
                f"got {value!r}"
            )
    if not isinstance(span.name, str):
        raise ReproError(
            f"trace line {line_no} field 'name' must be a string, "
            f"got {span.name!r}"
        )
    return span


def parse_jsonl(text: str, allow_truncated_tail: bool = False) -> list[Span]:
    """Inverse of :meth:`Tracer.export_jsonl` (blank lines ignored).

    A killed run can leave a *partial last line* behind; that line does
    not decode, and the error says so explicitly instead of a generic
    parse failure.  With ``allow_truncated_tail=True`` the partial tail
    is dropped and the intact prefix is returned — the ``repro trace
    --input --allow-truncated`` recovery path.  Spans are exported in
    finish order (parents after children), so losing the tail loses the
    outermost parents: spans orphaned by the cut are re-rooted
    (``parent_id=None``) so the prefix still validates and renders.
    Truncation forgiveness only ever applies to the final non-blank
    line; garbage in the middle of the file always raises.
    """
    spans = []
    lines = text.splitlines()
    last_line_no = max(
        (i for i, line in enumerate(lines, start=1) if line.strip()), default=0
    )
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            if line_no == last_line_no:
                if allow_truncated_tail:
                    retained = {span.span_id for span in spans}
                    for span in spans:
                        if span.parent_id not in retained:
                            span.parent_id = None
                    break
                raise ReproError(
                    f"trace line {line_no} (the last line) is truncated — "
                    "likely a killed run; re-run with --allow-truncated to "
                    f"render the intact prefix ({exc})"
                ) from exc
            raise ReproError(
                f"trace line {line_no} does not parse: {exc}"
            ) from exc
        try:
            spans.append(_span_from_line(data, line_no))
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(
                f"trace line {line_no} does not parse: {exc}"
            ) from exc
    return spans


def merge_span_groups(
    groups: Sequence[Sequence[Span]], parent_id: int | None = None, id_base: int = 0
) -> list[Span]:
    """Concatenate independently-traced span groups into one id space.

    Each group (e.g. one serving bucket's trace) carries ids starting at 1;
    merging reassigns ids deterministically in group order and optionally
    reparents each group's roots under ``parent_id`` (the engine hangs
    bucket traces under its ``serve.execute`` span this way).
    """
    merged: list[Span] = []
    offset = id_base
    for group in groups:
        if not group:
            continue
        remap = {span.span_id: offset + i + 1 for i, span in enumerate(group)}
        for span in group:
            merged.append(
                Span(
                    span_id=remap[span.span_id],
                    parent_id=remap[span.parent_id]
                    if span.parent_id in remap
                    else parent_id,
                    name=span.name,
                    start=span.start,
                    end=span.end,
                    attrs=dict(span.attrs),
                )
            )
        offset += len(group)
    return merged


def validate_spans(spans: Sequence[Span]) -> None:
    """Raise :class:`ReproError` unless parentage is well-formed and acyclic."""
    by_id: dict[int, Span] = {}
    for span in spans:
        if span.span_id in by_id:
            raise ReproError(f"duplicate span id {span.span_id}")
        by_id[span.span_id] = span
    for span in spans:
        if span.parent_id is not None and span.parent_id not in by_id:
            raise ReproError(
                f"span {span.span_id} ({span.name!r}) has missing parent "
                f"{span.parent_id}"
            )
    for span in spans:
        seen = {span.span_id}
        cursor = span
        while cursor.parent_id is not None:
            if cursor.parent_id in seen:
                raise ReproError(f"span parentage cycle through {cursor.parent_id}")
            seen.add(cursor.parent_id)
            cursor = by_id[cursor.parent_id]


def _children(spans: Sequence[Span]) -> dict[int | None, list[Span]]:
    children: dict[int | None, list[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.start, s.span_id))
    return children


def slowest_path(spans: Sequence[Span]) -> list[Span]:
    """The root-to-leaf chain with the largest cumulative cost.

    Greedy maximal descent: start at the costliest root, at every level
    step into the costliest child.  With tick costs this is "where did the
    events go"; with explicit ``cost`` attrs (predicted seconds, op
    counts) it is "where did the time go".
    """
    children = _children(spans)
    roots = children.get(None, [])
    if not roots:
        return []
    path = [max(roots, key=lambda s: (s.cost, -s.start))]
    while True:
        next_level = children.get(path[-1].span_id, [])
        if not next_level:
            return path
        path.append(max(next_level, key=lambda s: (s.cost, -s.start)))


def render_span_tree(spans: Sequence[Span]) -> str:
    """An ASCII tree of the span forest, slowest path flagged with ``*``.

    Shows each span's logical tick duration and its attributes; the line
    prefix marks membership in :func:`slowest_path`.
    """
    validate_spans(spans)
    children = _children(spans)
    hot = {span.span_id for span in slowest_path(spans)}
    lines: list[str] = []

    def visit(span: Span, depth: int) -> None:
        marker = "*" if span.span_id in hot else " "
        attrs = ""
        if span.attrs:
            inner = " ".join(f"{k}={span.attrs[k]}" for k in sorted(span.attrs))
            attrs = f"  [{inner}]"
        lines.append(f"{marker} {'  ' * depth}{span.name} ({span.ticks} ticks){attrs}")
        for child in children.get(span.span_id, []):
            visit(child, depth + 1)

    for root in children.get(None, []):
        visit(root, 0)
    if hot:
        lines.append("")
        lines.append(
            "slowest path: " + " -> ".join(s.name for s in slowest_path(spans))
        )
    return "\n".join(lines)
