"""repro.obs — zero-dependency tracing, metrics, and profiling hooks.

The library layers (serving engine, transport, guard, Paillier) accept an
optional :class:`Observability` handle.  ``obs=None`` — the default
everywhere — is a hard no-op with byte-identical behaviour, enforced by
regression fixtures; passing a handle turns on hierarchical span tracing
(:mod:`repro.obs.trace`) and metric publication (:mod:`repro.obs.metrics`).
Profiled key wrappers (:mod:`repro.obs.profile`) are separately opt-in.

See OBSERVABILITY.md for the span model and the canonical metric names.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.obs.analyze import (
    PHASES,
    PhaseBreakdown,
    QueueDelaySummary,
    SLOPolicy,
    SLOReport,
    SLOResult,
    analyze_serve_report,
    attribute_phases,
    attribute_phases_by_protocol,
    classify_phase,
    critical_path,
    estimate_modmuls,
    evaluate_slo,
    normalized_ops,
    queue_delay_summary,
    render_attribution,
    render_exemplars,
    self_ticks,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.profile import (
    KeyProfiler,
    OpProfile,
    ProfiledPrivateKey,
    ProfiledPublicKey,
    pow_mul_estimate,
    profile_keypair,
)
from repro.obs.series import (
    LEDGER_SCHEMA_VERSION,
    LedgerRecord,
    RunLedger,
    config_digest,
    ledger_stamp,
    parse_ledger_jsonl,
    records_from_text,
)
from repro.obs.trace import (
    Span,
    Tracer,
    merge_span_groups,
    parse_jsonl,
    render_span_tree,
    slowest_path,
    validate_spans,
)

# NOTE: repro.obs.trend is deliberately NOT re-exported here — it imports
# repro.bench.sentinel at module level (for the metric taxonomy), and
# sentinel imports repro.obs.series; pulling trend into this package
# __init__ would close that loop into a circular import.  Import it as
# ``from repro.obs.trend import ...`` directly.


@dataclass
class Observability:
    """One tracer plus one metrics registry, threaded through a run."""

    tracer: Tracer = field(default_factory=Tracer)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def span(self, name: str, **attrs):
        """Open a span on the tracer (a context manager yielding it)."""
        return self.tracer.span(name, **attrs)

    def count(self, name: str, amount: float = 1) -> None:
        """Increment the named counter."""
        self.metrics.counter(name).inc(amount)

    def snapshot(self) -> MetricsSnapshot:
        """Freeze the metrics registry into an immutable snapshot."""
        return self.metrics.snapshot()


#: A shared inert context manager — ``maybe_span`` with ``obs=None``.
_NULL_CONTEXT = nullcontext(None)


def maybe_span(obs: Observability | None, name: str, **attrs):
    """A span if observability is on, an inert context manager if not.

    Instrumented code writes ``with maybe_span(obs, "x") as span:`` and
    guards attribute writes with ``if span is not None`` — zero allocations
    and no tracer state when ``obs`` is None.
    """
    if obs is None:
        return _NULL_CONTEXT
    return obs.span(name, **attrs)


__all__ = [
    "DEFAULT_BUCKETS",
    "LEDGER_SCHEMA_VERSION",
    "PHASES",
    "Counter",
    "Gauge",
    "Histogram",
    "KeyProfiler",
    "LedgerRecord",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Observability",
    "OpProfile",
    "PhaseBreakdown",
    "ProfiledPrivateKey",
    "ProfiledPublicKey",
    "QueueDelaySummary",
    "RunLedger",
    "SLOPolicy",
    "SLOReport",
    "SLOResult",
    "Span",
    "Tracer",
    "analyze_serve_report",
    "attribute_phases",
    "attribute_phases_by_protocol",
    "classify_phase",
    "config_digest",
    "critical_path",
    "estimate_modmuls",
    "evaluate_slo",
    "ledger_stamp",
    "maybe_span",
    "merge_span_groups",
    "normalized_ops",
    "parse_jsonl",
    "parse_ledger_jsonl",
    "pow_mul_estimate",
    "profile_keypair",
    "queue_delay_summary",
    "records_from_text",
    "render_attribution",
    "render_exemplars",
    "render_span_tree",
    "self_ticks",
    "slowest_path",
    "validate_spans",
]
