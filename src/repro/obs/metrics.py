"""A process-local metrics registry: counters, gauges, fixed-bucket histograms.

Zero dependencies, deterministic by construction: every instrument is a
plain Python accumulator, snapshots serialize with sorted names, and
histogram buckets are fixed at creation — two runs that perform the same
operations publish byte-identical snapshots.  Wall-clock time is *never*
published here (profiling wall time lives in :mod:`repro.obs.profile` and
is excluded from snapshots by default), so a
:class:`MetricsSnapshot` can be embedded in a
:class:`~repro.serve.engine.ServingReport` without breaking its
determinism contract.

The canonical metric names the library publishes are documented in
OBSERVABILITY.md; the ``obs-smoke`` CI job fails if a documented name is
never published.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigurationError

#: Default histogram bucket upper bounds (seconds-flavored, but unitless).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
)


@dataclass
class Counter:
    """A monotonically increasing count (int or float increments)."""

    value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ConfigurationError("counters only move forward")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value that can move in both directions."""

    value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """A fixed-bucket histogram (cumulative counts, like Prometheus).

    ``buckets`` are upper bounds; an observation lands in the first bucket
    whose bound is >= the value, or the implicit +inf overflow bucket.
    No numpy, no quantile estimation — exact counts only.
    """

    __slots__ = ("buckets", "counts", "overflow", "total", "count", "exemplars")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigurationError("histogram buckets must be sorted and non-empty")
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * len(self.buckets)
        self.overflow = 0
        self.total = 0.0
        self.count = 0
        # Bucket index (len(buckets) = the overflow bucket) → the worst
        # observation that landed there, as (value, exemplar span id).
        self.exemplars: dict[int, tuple[float, int]] = {}

    def _bucket_index(self, value: float) -> int:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                return i
        return len(self.buckets)

    def observe(self, value: float, exemplar: int | None = None) -> None:
        self.count += 1
        self.total += value
        index = self._bucket_index(value)
        if index == len(self.buckets):
            self.overflow += 1
        else:
            self.counts[index] += 1
        if exemplar is not None:
            self._keep_exemplar(index, value, exemplar)

    def _keep_exemplar(self, index: int, value: float, exemplar: int) -> None:
        """Retain the bucket's worst (value, span) pair, order-invariant."""
        current = self.exemplars.get(index)
        if current is None or (value, exemplar) > current:
            self.exemplars[index] = (value, exemplar)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        data = {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "overflow": self.overflow,
            "total": round(self.total, 9),
            "count": self.count,
        }
        if self.exemplars:
            # Emitted only when populated: a histogram that never saw an
            # exemplar serializes byte-identically to every prior release.
            data["exemplars"] = {
                str(index): {
                    "value": round(self.exemplars[index][0], 9),
                    "span": self.exemplars[index][1],
                }
                for index in sorted(self.exemplars)
            }
        return data


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable, JSON-roundtrippable dump of one registry's state."""

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {k: self.histograms[k] for k in sorted(self.histograms)},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetricsSnapshot":
        return cls(
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})),
            histograms={k: dict(v) for k, v in data.get("histograms", {}).items()},
        )

    @property
    def names(self) -> set[str]:
        """Every metric name this snapshot carries."""
        return set(self.counters) | set(self.gauges) | set(self.histograms)


class MetricsRegistry:
    """Create-on-first-use instrument registry, one per process (or bucket).

    Serving buckets each own a registry; their snapshots merge into the
    engine's registry in bucket order, so serial and multiprocessing
    executors report identical totals.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(buckets)
        return instrument

    def snapshot(self) -> MetricsSnapshot:
        """Freeze the registry into an immutable snapshot."""
        return MetricsSnapshot(
            counters={name: c.value for name, c in self._counters.items()},
            gauges={name: g.value for name, g in self._gauges.items()},
            histograms={name: h.to_dict() for name, h in self._histograms.items()},
        )

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram counts add; gauges take the maximum (the
        merged gauge answers "how high did it get anywhere", which is the
        only cross-bucket reading that makes sense for depths).
        """
        for name, value in snapshot.counters.items():
            self.counter(name).inc(value)
        for name, value in snapshot.gauges.items():
            gauge = self.gauge(name)
            gauge.set(max(gauge.value, value))
        for name, data in snapshot.histograms.items():
            histogram = self.histogram(name, tuple(data["buckets"]))
            if list(histogram.buckets) != list(data["buckets"]):
                raise ConfigurationError(
                    f"histogram {name!r} bucket layouts differ; cannot merge"
                )
            for i, count in enumerate(data["counts"]):
                histogram.counts[i] += count
            histogram.overflow += data["overflow"]
            histogram.total += data["total"]
            histogram.count += data["count"]
            for bucket, entry in data.get("exemplars", {}).items():
                histogram._keep_exemplar(
                    int(bucket), entry["value"], entry["span"]
                )
