"""Opt-in profiling wrappers for the Paillier keys.

``ProfiledPublicKey`` / ``ProfiledPrivateKey`` are drop-in *subclasses* of
the real keys (so ``isinstance`` equality and ciphertext compatibility
checks keep passing) that additionally account, per operation class, for:

- **calls** — how many operations ran;
- **bigint_muls** — an analytic estimate of big-integer multiplications:
  a ``pow(b, e, m)`` via square-and-multiply costs
  ``(e.bit_length() - 1)`` squarings plus ``(popcount(e) - 1)`` multiplies;
- **mul_work** — the same count weighted by ``(mod_bits / 64) ** 2``, a
  schoolbook-multiplication proxy that makes half-size CRT limbs
  comparable to full-size generic limbs;
- **wall_seconds** — real elapsed time (nondeterministic; excluded from
  ``to_dict`` by default so profiles can sit in deterministic reports).

The estimates are exact for the binary exponentiation CPython uses on
small exponents and a stable proxy on large ones — good enough to answer
"did the CRT path really halve the work", which is what benchmarks assert.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.crypto import fastexp
from repro.crypto.paillier import (
    Ciphertext,
    KeyPair,
    PaillierPrivateKey,
    PaillierPublicKey,
)


def pow_mul_estimate(exponent: int, mod_bits: int) -> tuple[int, float]:
    """(bigint multiplications, weighted work) for one ``pow(b, e, m)``."""
    e = abs(exponent)
    if e <= 1:
        muls = 0
    else:
        muls = (e.bit_length() - 1) + (e.bit_count() - 1)
    limb_factor = (mod_bits / 64.0) ** 2
    return muls, muls * limb_factor


@dataclass
class OpProfile:
    """Accumulated cost of one operation class (e.g. ``decrypt.crt``)."""

    calls: int = 0
    bigint_muls: int = 0
    mul_work: float = 0.0
    wall_seconds: float = 0.0

    def record(self, muls: int, work: float, wall: float) -> None:
        self.calls += 1
        self.bigint_muls += muls
        self.mul_work += work
        self.wall_seconds += wall

    def merge(self, other: "OpProfile") -> None:
        self.calls += other.calls
        self.bigint_muls += other.bigint_muls
        self.mul_work += other.mul_work
        self.wall_seconds += other.wall_seconds

    def to_dict(self, include_wall: bool = False) -> dict:
        data = {
            "calls": self.calls,
            "bigint_muls": self.bigint_muls,
            "mul_work": round(self.mul_work, 3),
        }
        if include_wall:
            data["wall_seconds"] = self.wall_seconds
        return data


class KeyProfiler:
    """Per-op-class ledger shared by a profiled key pair."""

    def __init__(self) -> None:
        self.ops: dict[str, OpProfile] = {}

    def profile(self, op_class: str) -> OpProfile:
        profile = self.ops.get(op_class)
        if profile is None:
            profile = self.ops[op_class] = OpProfile()
        return profile

    def merge(self, other: "KeyProfiler") -> None:
        for op_class, profile in other.ops.items():
            self.profile(op_class).merge(profile)

    def to_dict(self, include_wall: bool = False) -> dict:
        return {
            op_class: self.ops[op_class].to_dict(include_wall)
            for op_class in sorted(self.ops)
        }


class ProfiledPublicKey(PaillierPublicKey):
    """A public key that accounts its encryptions and rerandomizations."""

    __slots__ = ("profiler",)

    def __init__(self, n: int, profiler: KeyProfiler | None = None) -> None:
        super().__init__(n)
        self.profiler = profiler if profiler is not None else KeyProfiler()

    def _nonce_cost(self, s: int) -> tuple[int, int]:
        """(chain muls, window-table muls) of one nonce exponentiation.

        With the fast paths on these are the *exact* counts of the cached
        window program; off, the square-and-multiply estimate of builtin
        ``pow`` (and no table).
        """
        if fastexp.enabled():
            plan = self.nonce_plan(s)
            return plan.chain_muls, plan.table_muls
        muls, _ = pow_mul_estimate(self.n_pow(s), (s + 1) * self.key_bits)
        return muls, 0

    def encrypt(self, plaintext, s=1, rng=None, secure=True) -> Ciphertext:
        started = time.perf_counter()
        result = super().encrypt(plaintext, s, rng, secure)
        wall = time.perf_counter() - started
        limb_factor = ((s + 1) * self.key_bits / 64.0) ** 2
        if secure:
            # The nonce exponentiation r^{N^s}, plus the same 2s-mul
            # binomial expansion the insecure path pays, plus the combine
            # multiply.  Window-table builds are charged under their own
            # op class so per-call chain work stays comparable across
            # window widths.
            chain, tables = self._nonce_cost(s)
            muls = chain + 2 * s + 1
            if tables:
                self.profiler.profile("encrypt.tables").record(
                    tables, tables * limb_factor, 0.0
                )
        else:
            # Only the s-term binomial expansion of (1+N)^m remains.
            muls = 2 * s
        self.profiler.profile("encrypt").record(muls, muls * limb_factor, wall)
        return result

    def encrypt_with_factor(self, plaintext, factor, s=1) -> Ciphertext:
        started = time.perf_counter()
        result = super().encrypt_with_factor(plaintext, factor, s)
        wall = time.perf_counter() - started
        # The nonce exponentiation happened offline (the pool paid for
        # it); this call only performs the binomial expansion and the
        # combine multiply.
        muls = 2 * s + 1
        limb_factor = ((s + 1) * self.key_bits / 64.0) ** 2
        self.profiler.profile("encrypt.pooled").record(
            muls, muls * limb_factor, wall
        )
        return result

    def rerandomize(self, c: Ciphertext, rng) -> Ciphertext:
        started = time.perf_counter()
        result = super().rerandomize(c, rng)
        wall = time.perf_counter() - started
        limb_factor = ((c.s + 1) * self.key_bits / 64.0) ** 2
        chain, tables = self._nonce_cost(c.s)
        if tables:
            self.profiler.profile("rerandomize.tables").record(
                tables, tables * limb_factor, 0.0
            )
        muls = chain + 1  # the multiply into the existing ciphertext
        self.profiler.profile("rerandomize").record(
            muls, muls * limb_factor, wall
        )
        return result


class ProfiledPrivateKey(PaillierPrivateKey):
    """A private key that accounts decryptions, split by path taken."""

    __slots__ = ("profiler",)

    def __init__(
        self,
        public_key: PaillierPublicKey,
        p: int,
        q: int,
        profiler: KeyProfiler | None = None,
    ) -> None:
        super().__init__(public_key, p, q)
        self.profiler = profiler if profiler is not None else KeyProfiler()

    def decrypt_with_path(self, c: Ciphertext, use_crt: bool = True):
        started = time.perf_counter()
        plaintext, path = super().decrypt_with_path(c, use_crt)
        wall = time.perf_counter() - started
        key_bits = self.public_key.key_bits
        if path == "crt":
            # Two half-size exponentiations with (prime - 1) exponents —
            # windowed through the cached per-prime plans when the fast
            # paths are on.
            half_factor = ((c.s + 1) * key_bits // 2 / 64.0) ** 2
            if fastexp.enabled():
                plan_p, plan_q = self.prime_plans()
                muls = plan_p.chain_muls + plan_q.chain_muls
                tables = plan_p.table_muls + plan_q.table_muls
                if tables:
                    self.profiler.profile("decrypt.crt.tables").record(
                        tables, tables * half_factor, 0.0
                    )
                work = muls * half_factor
            else:
                mp, wp = pow_mul_estimate(self.p - 1, (c.s + 1) * key_bits // 2)
                mq, wq = pow_mul_estimate(self.q - 1, (c.s + 1) * key_bits // 2)
                muls, work = mp + mq, wp + wq
        else:
            muls, work = pow_mul_estimate(self.lam, (c.s + 1) * key_bits)
        self.profiler.profile(f"decrypt.{path}").record(muls, work, wall)
        return plaintext, path


def profile_keypair(keypair: KeyPair) -> tuple[KeyPair, KeyProfiler]:
    """Wrap an existing key pair with profiling; one shared profiler.

    The profiled public key equals the original (same N) so ciphertexts
    produced under either interoperate freely.
    """
    profiler = KeyProfiler()
    public = ProfiledPublicKey(keypair.public_key.n, profiler)
    secret = ProfiledPrivateKey(
        public, keypair.secret_key.p, keypair.secret_key.q, profiler
    )
    return KeyPair(secret, public), profiler
