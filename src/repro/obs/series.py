"""The append-only cross-commit run ledger.

One JSONL file per suite under ``benchmarks/series/<suite>.jsonl``; each
line is one run of that suite at one commit — exact counters, timing
summaries, the phase breakdown ``repro analyze`` would print for the run,
and (optionally) the full observability metrics snapshot, exemplars
included.  The ledger is the longitudinal companion to the baseline
store: a baseline answers *"did this run regress against the frozen
record?"*, the ledger answers *"when did this counter move, and what was
the run doing at that commit?"*.

Contracts:

- **Append-only.**  Records are only ever added; a re-run at an already
  recorded ``(git_sha, config_digest)`` is an idempotent no-op, so CI
  retries and local replays never duplicate history.
- **Schema-versioned.**  Every line carries ``schema_version``; foreign
  versions are refused loudly instead of being misread.
- **Ordered by ``seq``.**  Append assigns a monotone sequence number, so
  analytics (:mod:`repro.obs.trend`) are invariant to how the file's
  lines are later shuffled, merged, or partially recovered.
- **Crash-tolerant.**  :func:`parse_ledger_jsonl` follows the same error
  taxonomy as :func:`repro.obs.trace.parse_jsonl`: a truncated *last*
  line (killed run) is recoverable on request, garbage in the middle of
  the file always raises with the offending line number.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.errors import ReproError

#: Version of the ledger line layout; bump on breaking changes.
LEDGER_SCHEMA_VERSION = 1

#: Marker embedded in perf-check markdown reports: one machine-readable
#: ledger record per experiment, so ``repro trend --append report.md``
#: can never mis-file a suite (the suite name and config digest travel
#: *inside* the document, not in its filename).
LEDGER_STAMP_PREFIX = "<!-- repro-ledger: "
LEDGER_STAMP_SUFFIX = " -->"


def config_digest(config: Mapping | None) -> str:
    """A short stable digest of a workload configuration dict."""
    canonical = json.dumps(
        dict(config) if config else {}, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


@dataclass
class LedgerRecord:
    """One suite run at one commit, as stored on a ledger line.

    ``metrics`` is the flat sentinel-style name→value mapping (exact
    counters and timing summaries); ``phases`` is the per-phase tick
    breakdown of the run's trace (the ``repro analyze`` attribution),
    carried so a later changepoint can say *which phase* the offending
    commit was spending in; ``obs`` is the full metrics snapshot dict
    (histograms with exemplars ride here); ``accepted`` names metrics
    whose regression at this record is explained and must not fail
    ``repro trend --check``.
    """

    suite: str
    git_sha: str
    metrics: dict[str, float]
    config_digest: str = ""
    seq: int = -1
    keysize: int | None = None
    config: dict = field(default_factory=dict)
    phases: dict[str, int] | None = None
    quality: dict[str, float] | None = None
    obs: dict | None = None
    accepted: tuple[str, ...] = ()
    source: str = "manual"
    schema_version: int = LEDGER_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not self.suite or not isinstance(self.suite, str):
            raise ReproError("ledger record needs a non-empty suite name")
        if not self.git_sha or not isinstance(self.git_sha, str):
            raise ReproError("ledger record needs a non-empty git_sha")
        if not self.config_digest:
            self.config_digest = config_digest(self.config)
        self.accepted = tuple(self.accepted)
        for name, value in self.metrics.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ReproError(
                    f"ledger metric {name!r} must be numeric, got {value!r}"
                )

    def to_dict(self) -> dict:
        data = {
            "schema_version": self.schema_version,
            "suite": self.suite,
            "git_sha": self.git_sha,
            "config_digest": self.config_digest,
            "seq": self.seq,
            "keysize": self.keysize,
            "config": {k: self.config[k] for k in sorted(self.config)},
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
            "source": self.source,
        }
        if self.phases is not None:
            data["phases"] = {k: self.phases[k] for k in sorted(self.phases)}
        if self.quality is not None:
            data["quality"] = {k: self.quality[k] for k in sorted(self.quality)}
        if self.obs is not None:
            data["obs"] = self.obs
        if self.accepted:
            data["accepted"] = sorted(self.accepted)
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "LedgerRecord":
        try:
            return cls(
                suite=data["suite"],
                git_sha=data["git_sha"],
                metrics=dict(data["metrics"]),
                config_digest=data.get("config_digest", ""),
                seq=data.get("seq", -1),
                keysize=data.get("keysize"),
                config=dict(data.get("config", {})),
                phases=dict(data["phases"]) if data.get("phases") else None,
                quality=dict(data["quality"]) if data.get("quality") else None,
                obs=data.get("obs"),
                accepted=tuple(data.get("accepted", ())),
                source=data.get("source", "manual"),
                schema_version=data.get("schema_version", 0),
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ReproError(f"malformed ledger record: {exc}") from exc


def _record_from_line(data: object, line_no: int) -> LedgerRecord:
    """One decoded JSONL line → a schema-checked :class:`LedgerRecord`."""
    if not isinstance(data, dict):
        raise ReproError(
            f"ledger line {line_no} is valid JSON but not a record object "
            f"(got {type(data).__name__}); was this file written by "
            "interleaved processes?"
        )
    record = LedgerRecord.from_dict(data)
    if record.schema_version != LEDGER_SCHEMA_VERSION:
        raise ReproError(
            f"ledger line {line_no} has schema v{record.schema_version}, "
            f"this library reads v{LEDGER_SCHEMA_VERSION}; convert or "
            "re-append it"
        )
    if not isinstance(record.seq, int) or isinstance(record.seq, bool):
        raise ReproError(
            f"ledger line {line_no} field 'seq' must be an integer, "
            f"got {record.seq!r}"
        )
    return record


def parse_ledger_jsonl(
    text: str, allow_truncated_tail: bool = False
) -> list[LedgerRecord]:
    """Inverse of the ledger's line format (blank lines ignored).

    A killed append can leave a *partial last line* behind; that line
    does not decode, and the error says so explicitly instead of a
    generic parse failure.  With ``allow_truncated_tail=True`` the
    partial tail is dropped and the intact prefix is returned — the same
    recovery taxonomy as :func:`repro.obs.trace.parse_jsonl`.
    Truncation forgiveness only ever applies to the final non-blank
    line; garbage in the middle of the file always raises.
    """
    records: list[LedgerRecord] = []
    lines = text.splitlines()
    last_line_no = max(
        (i for i, line in enumerate(lines, start=1) if line.strip()), default=0
    )
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            if line_no == last_line_no:
                if allow_truncated_tail:
                    break
                raise ReproError(
                    f"ledger line {line_no} (the last line) is truncated — "
                    "likely a killed append; re-run with --allow-truncated "
                    f"to keep the intact prefix ({exc})"
                ) from exc
            raise ReproError(
                f"ledger line {line_no} does not parse: {exc}"
            ) from exc
        records.append(_record_from_line(data, line_no))
    return records


def sort_records(records: Iterable[LedgerRecord]) -> list[LedgerRecord]:
    """Records in append order, regardless of file-line order."""
    return sorted(records, key=lambda r: (r.seq, r.git_sha, r.config_digest))


class RunLedger:
    """``benchmarks/series/`` as an append-only per-suite database."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def path(self, suite: str) -> Path:
        """Where the suite's ledger file lives."""
        return self.directory / f"{suite}.jsonl"

    def suites(self) -> list[str]:
        """Every suite with at least one ledger line, sorted."""
        if not self.directory.is_dir():
            return []
        return sorted(p.stem for p in self.directory.glob("*.jsonl"))

    def load(
        self, suite: str, allow_truncated_tail: bool = False
    ) -> list[LedgerRecord]:
        """All of one suite's records, in append (``seq``) order."""
        path = self.path(suite)
        if not path.is_file():
            return []
        return sort_records(
            parse_ledger_jsonl(
                path.read_text(encoding="utf-8"),
                allow_truncated_tail=allow_truncated_tail,
            )
        )

    def append(
        self, record: LedgerRecord, allow_truncated_tail: bool = False
    ) -> tuple[LedgerRecord, bool]:
        """Append one record; returns ``(stored_record, appended)``.

        Idempotent: a record whose ``(git_sha, config_digest)`` already
        exists in the suite's file is *not* re-appended — the existing
        record is returned with ``appended=False``.  A fresh record gets
        the next sequence number, so attribution order is decided at
        append time, never by later file-line order.
        """
        existing = self.load(record.suite, allow_truncated_tail)
        for prior in existing:
            if (
                prior.git_sha == record.git_sha
                and prior.config_digest == record.config_digest
            ):
                return prior, False
        stored = LedgerRecord.from_dict(record.to_dict())
        stored.schema_version = LEDGER_SCHEMA_VERSION
        stored.seq = max((r.seq for r in existing), default=-1) + 1
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path(record.suite)
        if allow_truncated_tail and path.is_file():
            # Heal a killed append before writing: drop the partial last
            # line (it never became a record) so the file parses strictly
            # again afterwards.  Intact lines keep their original bytes.
            lines = path.read_text(encoding="utf-8").splitlines()
            while lines and not lines[-1].strip():
                lines.pop()
            if lines:
                try:
                    json.loads(lines[-1])
                except json.JSONDecodeError:
                    lines.pop()
            path.write_text(
                "".join(line + "\n" for line in lines), encoding="utf-8"
            )
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(stored.to_dict(), sort_keys=True) + "\n")
        return stored, True

    def append_many(
        self, records: Sequence[LedgerRecord]
    ) -> list[tuple[LedgerRecord, bool]]:
        """Append several records, in order; see :meth:`append`."""
        return [self.append(record) for record in records]


# --------------------------------------------------------------- converters


def _flatten_numeric(data: Mapping, prefix: str = "", depth: int = 3) -> dict:
    """Dotted numeric leaves of a nested result dict (lists skipped)."""
    flat: dict[str, float] = {}
    for key in sorted(data):
        value = data[key]
        name = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            flat[name] = value
        elif isinstance(value, Mapping) and depth > 1:
            flat.update(_flatten_numeric(value, f"{name}.", depth - 1))
    return flat


def _serving_metrics(results: Mapping) -> dict[str, float] | None:
    """Sentinel metrics when ``results`` is (or wraps) a serving report."""
    from repro.bench.sentinel import serving_report_metrics

    if "latency" in results and "queue" in results:
        return serving_report_metrics(results)
    for key in ("process", "serial", "report"):
        inner = results.get(key)
        if isinstance(inner, Mapping) and "latency" in inner:
            return serving_report_metrics(inner)
    return None


def record_from_baseline_document(data: Mapping) -> LedgerRecord:
    """A ledger record converted from a ``benchmarks/baselines`` file."""
    try:
        return LedgerRecord(
            suite=data["experiment"],
            git_sha=data.get("git_sha", "unknown"),
            metrics=dict(data["metrics"]),
            keysize=data.get("keysize"),
            config=dict(data.get("config", {})),
            source="baseline",
        )
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise ReproError(f"malformed baseline document: {exc}") from exc


def record_from_bench_document(data: Mapping) -> LedgerRecord:
    """A ledger record converted from a ``BENCH_<experiment>.json`` file.

    Serving-report payloads distill through the sentinel's
    ``serving_report_metrics``; anything else contributes its numeric
    leaves.  The document's observability snapshot (when the run was
    traced) rides along whole, exemplars included.
    """
    try:
        results = data.get("results", {})
        metrics = (
            _serving_metrics(results)
            if isinstance(results, Mapping)
            else None
        )
        if metrics is None:
            metrics = (
                _flatten_numeric(results)
                if isinstance(results, Mapping)
                else {}
            )
        return LedgerRecord(
            suite=data["experiment"],
            git_sha=data.get("git_sha", "unknown"),
            metrics=metrics,
            keysize=data.get("keysize"),
            config=dict(data.get("config", {})),
            obs=data.get("metrics"),
            source="bench",
        )
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise ReproError(f"malformed bench document: {exc}") from exc


def ledger_stamp(record: LedgerRecord) -> str:
    """The HTML-comment form of a record, for markdown report embedding."""
    payload = json.dumps(record.to_dict(), sort_keys=True)
    return f"{LEDGER_STAMP_PREFIX}{payload}{LEDGER_STAMP_SUFFIX}"


def records_from_markdown(text: str) -> list[LedgerRecord]:
    """Every ledger stamp embedded in a perf-check markdown report."""
    records: list[LedgerRecord] = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped.startswith(LEDGER_STAMP_PREFIX):
            continue
        if not stripped.endswith(LEDGER_STAMP_SUFFIX):
            raise ReproError(
                f"report line {line_no} opens a ledger stamp but never "
                "closes it; was the file truncated?"
            )
        payload = stripped[len(LEDGER_STAMP_PREFIX) : -len(LEDGER_STAMP_SUFFIX)]
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"report line {line_no} ledger stamp does not parse: {exc}"
            ) from exc
        records.append(LedgerRecord.from_dict(data))
    return records


def records_from_text(text: str) -> list[LedgerRecord]:
    """Parse any appendable document into ledger records.

    Accepts a perf-check markdown report (with embedded ledger stamps), a
    baseline JSON document, a ``BENCH_*.json`` document, or a raw JSONL
    ledger fragment.  Raises :class:`ReproError` when the document holds
    no recognizable records — an old perf-check report without stamps
    names the fix explicitly.
    """
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            data = json.loads(text)
        except json.JSONDecodeError:
            # Not one JSON document — maybe a JSONL ledger fragment.
            return parse_ledger_jsonl(text)
        if not isinstance(data, Mapping):
            raise ReproError(
                "document is valid JSON but not a record object; "
                "expected a baseline or BENCH document"
            )
        if "results" in data:
            return [record_from_bench_document(data)]
        if "experiment" in data and "metrics" in data:
            return [record_from_baseline_document(data)]
        if "suite" in data and "metrics" in data:
            return [LedgerRecord.from_dict(data)]
        raise ReproError(
            "JSON document carries neither a bench payload ('results') nor "
            "baseline metrics ('experiment' + 'metrics'); nothing to append"
        )
    records = records_from_markdown(text)
    if not records:
        raise ReproError(
            "no ledger stamps found in the document — re-generate the "
            "report with a current `repro perf-check --report-out` (older "
            "reports predate embedded suite/config provenance)"
        )
    return records
