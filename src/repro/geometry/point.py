"""Immutable 2-D point."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True, order=True)
class Point:
    """A location in the 2-D plane.

    Points are immutable, hashable, and ordered lexicographically, which
    makes them usable as dictionary keys (e.g. POI lookup tables) and
    directly sortable for deterministic tie-breaking.
    """

    x: float
    y: float

    @property
    def is_finite(self) -> bool:
        """True when both coordinates are finite (no NaN, no ±∞)."""
        return math.isfinite(self.x) and math.isfinite(self.y)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (avoids the sqrt when only comparing)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translate(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y
