"""Distance functions between points and rectangles.

Besides the plain Euclidean metric the paper's query engine needs the two
classic R-tree bounds:

- ``mindist(p, R)`` — the smallest possible distance between ``p`` and any
  point of rectangle ``R`` (lower bound used for best-first pruning),
- ``maxdist(p, R)`` — the largest possible distance (upper bound, used by
  the IPPF baseline's candidate filtering).

Vectorized variants operating on numpy arrays of points are provided for
the Monte-Carlo answer sanitation, which evaluates tens of thousands of
candidate locations per hypothesis test.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return math.hypot(a.x - b.x, a.y - b.y)


def squared_euclidean(a: Point, b: Point) -> float:
    """Squared Euclidean distance (cheaper for pure comparisons)."""
    dx = a.x - b.x
    dy = a.y - b.y
    return dx * dx + dy * dy


def mindist_point_rect(p: Point, r: Rect) -> float:
    """Smallest distance from ``p`` to any point inside ``r``.

    Zero when ``p`` lies inside the rectangle.
    """
    dx = max(r.xmin - p.x, 0.0, p.x - r.xmax)
    dy = max(r.ymin - p.y, 0.0, p.y - r.ymax)
    return math.hypot(dx, dy)


def maxdist_point_rect(p: Point, r: Rect) -> float:
    """Largest distance from ``p`` to any point inside ``r``.

    Attained at one of the rectangle corners.
    """
    dx = max(p.x - r.xmin, r.xmax - p.x)
    dy = max(p.y - r.ymin, r.ymax - p.y)
    return math.hypot(dx, dy)


def pairwise_distances(xs: np.ndarray, ys: np.ndarray, p: Point) -> np.ndarray:
    """Euclidean distances from many points ``(xs[i], ys[i])`` to ``p``.

    ``xs`` and ``ys`` are equal-length 1-D float arrays; the result is a 1-D
    array of the same length.  This is the hot path of the answer sanitation.
    """
    return np.hypot(xs - p.x, ys - p.y)


def distance_matrix(xs: np.ndarray, ys: np.ndarray, points: list[Point]) -> np.ndarray:
    """Distances from many sample locations to many fixed points.

    Returns an array of shape ``(len(xs), len(points))`` where entry
    ``[i, j]`` is the distance from sample ``i`` to ``points[j]``.
    """
    px = np.array([q.x for q in points], dtype=np.float64)
    py = np.array([q.y for q in points], dtype=np.float64)
    return np.hypot(xs[:, None] - px[None, :], ys[:, None] - py[None, :])
