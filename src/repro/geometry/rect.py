"""Axis-aligned rectangle (minimum bounding rectangle)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ConfigurationError
from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``.

    Used as the MBR node key of the R-tree, the cloak region of the IPPF
    baseline, and the bounds of the :class:`~repro.geometry.space.LocationSpace`.
    Degenerate (zero-area) rectangles are allowed: a single point is the
    rectangle with ``xmin == xmax`` and ``ymin == ymax``.
    """

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ConfigurationError(
                f"invalid rectangle: ({self.xmin}, {self.ymin}, "
                f"{self.xmax}, {self.ymax})"
            )

    @classmethod
    def from_point(cls, p: Point) -> "Rect":
        """The degenerate rectangle covering exactly ``p``."""
        return cls(p.x, p.y, p.x, p.y)

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "Rect":
        """The minimum bounding rectangle of a non-empty point collection."""
        pts = list(points)
        if not pts:
            raise ConfigurationError("cannot bound an empty point collection")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        return cls(min(xs), min(ys), max(xs), max(ys))

    @classmethod
    def from_center(cls, center: Point, half_width: float, half_height: float) -> "Rect":
        """A rectangle centered at ``center`` with the given half extents."""
        if half_width < 0 or half_height < 0:
            raise ConfigurationError("half extents must be non-negative")
        return cls(
            center.x - half_width,
            center.y - half_height,
            center.x + half_width,
            center.y + half_height,
        )

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Point:
        return Point((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def contains_point(self, p: Point) -> bool:
        """Whether ``p`` lies inside or on the boundary."""
        return self.xmin <= p.x <= self.xmax and self.ymin <= p.y <= self.ymax

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other`` lies entirely inside this rectangle."""
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and other.xmax <= self.xmax
            and other.ymax <= self.ymax
        )

    def intersects(self, other: "Rect") -> bool:
        """Whether the two rectangles share at least a boundary point."""
        return not (
            other.xmin > self.xmax
            or other.xmax < self.xmin
            or other.ymin > self.ymax
            or other.ymax < self.ymin
        )

    def union(self, other: "Rect") -> "Rect":
        """The minimum bounding rectangle of both rectangles."""
        return Rect(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed to absorb ``other`` (the R-tree insert metric)."""
        return self.union(other).area - self.area

    def clip(self, other: "Rect") -> "Rect":
        """The intersection rectangle; raises if the rectangles are disjoint."""
        if not self.intersects(other):
            raise ConfigurationError("cannot clip disjoint rectangles")
        return Rect(
            max(self.xmin, other.xmin),
            max(self.ymin, other.ymin),
            min(self.xmax, other.xmax),
            min(self.ymax, other.ymax),
        )
