"""Planar geometry substrate: points, rectangles, distances, location space.

The paper works in a normalized 2-D metric space (Sequoia POIs normalized to
a square).  This package provides the small set of exact geometric
primitives every other subsystem builds on:

- :class:`~repro.geometry.point.Point` — an immutable 2-D location,
- :class:`~repro.geometry.rect.Rect` — an axis-aligned rectangle (MBR),
- :mod:`~repro.geometry.distance` — Euclidean metrics plus the
  ``mindist`` / ``maxdist`` bounds used by R-tree pruning,
- :class:`~repro.geometry.space.LocationSpace` — the bounded data space with
  area computation and uniform sampling (used by dummy generation and by the
  Monte-Carlo answer sanitation).
"""

from repro.geometry.distance import (
    euclidean,
    maxdist_point_rect,
    mindist_point_rect,
    squared_euclidean,
)
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.space import LocationSpace

__all__ = [
    "Point",
    "Rect",
    "LocationSpace",
    "euclidean",
    "squared_euclidean",
    "mindist_point_rect",
    "maxdist_point_rect",
]
