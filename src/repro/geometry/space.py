"""The bounded location space queries live in.

The paper normalizes the Sequoia dataset into a square space; user dummy
locations are drawn uniformly from this space, and Privacy IV is defined as
a *fraction of the space's area* — so the space needs to know its bounds,
its area, and how to sample uniformly from itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True, slots=True)
class LocationSpace:
    """A rectangular data space with uniform sampling.

    Parameters
    ----------
    bounds:
        The rectangle every location (POI or user) must fall into.  The
        default is the unit square, matching the paper's normalization.
    """

    bounds: Rect = field(default_factory=lambda: Rect(0.0, 0.0, 1.0, 1.0))

    def __post_init__(self) -> None:
        if self.bounds.area <= 0.0:
            raise ConfigurationError("location space must have positive area")

    @classmethod
    def unit_square(cls) -> "LocationSpace":
        """The normalized space used throughout the paper's evaluation."""
        return cls(Rect(0.0, 0.0, 1.0, 1.0))

    @property
    def area(self) -> float:
        return self.bounds.area

    def contains(self, p: Point) -> bool:
        """Whether ``p`` lies inside the space."""
        return self.bounds.contains_point(p)

    def sample_point(self, rng: np.random.Generator) -> Point:
        """Draw one location uniformly at random from the space."""
        x = rng.uniform(self.bounds.xmin, self.bounds.xmax)
        y = rng.uniform(self.bounds.ymin, self.bounds.ymax)
        return Point(float(x), float(y))

    def sample_points(self, count: int, rng: np.random.Generator) -> list[Point]:
        """Draw ``count`` i.i.d. uniform locations."""
        xs, ys = self.sample_arrays(count, rng)
        return [Point(float(x), float(y)) for x, y in zip(xs, ys, strict=True)]

    def sample_arrays(
        self, count: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``count`` uniform locations as coordinate arrays.

        This is the form the vectorized answer sanitation consumes: two 1-D
        float64 arrays of x and y coordinates.
        """
        if count < 0:
            raise ConfigurationError("sample count must be non-negative")
        xs = rng.uniform(self.bounds.xmin, self.bounds.xmax, size=count)
        ys = rng.uniform(self.bounds.ymin, self.bounds.ymax, size=count)
        return xs, ys

    def relative_area(self, region_area: float) -> float:
        """Express an area as a fraction of the whole space (the theta of §5)."""
        return region_area / self.area
