"""Spatial POI partitioning for the sharded serving cluster.

Splits one POI database into ``shards`` disjoint, jointly exhaustive
pieces.  Two deterministic strategies:

- ``"spatial"`` — recursive balanced kd-style splits: repeatedly take the
  most populated piece and cut it at the median of its wider axis, so
  every shard covers a compact rectangle of the location space.  Compact
  shards are what make per-shard kGNN sub-queries cheap (the R-tree sees
  locally dense data) and what SANNS-style scale-out assumes.
- ``"round-robin"`` — POIs in id order, dealt ``i % shards``; the control
  strategy with perfectly even counts and no spatial locality.
- ``"str"`` — Sort-Tile-Recursive cells from
  :func:`repro.spatial.str_build.str_partition_tiles`: shard boundaries
  coincide with the R-tree bulk loader's own leaf tiling, so a shard's
  sub-index packs exactly the leaves the monolithic tree would have
  placed in that region.

Both are pure functions of (pois, shards): the same database partitions
identically in every process, which is what keeps the scatter–gather
answer merge byte-reproducible across serial and multiprocessing runs.
"""

from __future__ import annotations

from typing import Sequence

from repro.datasets.poi import POI
from repro.errors import ConfigurationError

PARTITION_STRATEGIES = ("spatial", "round-robin", "str")


def _split_cell(cell: list[POI]) -> tuple[list[POI], list[POI]]:
    """Cut one cell at the median of its wider axis (ties broken exactly)."""
    xs = [p.location.x for p in cell]
    ys = [p.location.y for p in cell]
    axis_is_x = (max(xs) - min(xs)) >= (max(ys) - min(ys))
    if axis_is_x:
        ordered = sorted(cell, key=lambda p: (p.location.x, p.location.y, p.poi_id))
    else:
        ordered = sorted(cell, key=lambda p: (p.location.y, p.location.x, p.poi_id))
    half = len(ordered) // 2
    return ordered[:half], ordered[half:]


def spatial_partition(
    pois: Sequence[POI], shards: int
) -> tuple[tuple[POI, ...], ...]:
    """Balanced kd-style partition into ``shards`` non-empty cells."""
    cells: list[list[POI]] = [list(pois)]
    while len(cells) < shards:
        # Largest cell first; ties broken by cell index so the cut order
        # (and therefore the whole partition) is deterministic.
        index = max(range(len(cells)), key=lambda i: (len(cells[i]), -i))
        low, high = _split_cell(cells[index])
        cells[index : index + 1] = [low, high]
    return tuple(tuple(sorted(cell, key=lambda p: p.poi_id)) for cell in cells)


def str_partition(
    pois: Sequence[POI], shards: int
) -> tuple[tuple[POI, ...], ...]:
    """STR tiling into ``shards`` non-empty cells (see repro.spatial)."""
    from repro.spatial.str_build import str_partition_tiles

    tiles = str_partition_tiles(((p.location, p) for p in pois), shards)
    return tuple(
        tuple(sorted((poi for _, poi in tile), key=lambda p: p.poi_id))
        for tile in tiles
    )


def round_robin_partition(
    pois: Sequence[POI], shards: int
) -> tuple[tuple[POI, ...], ...]:
    """POIs in id order, dealt cyclically across shards."""
    cells: list[list[POI]] = [[] for _ in range(shards)]
    for i, poi in enumerate(sorted(pois, key=lambda p: p.poi_id)):
        cells[i % shards].append(poi)
    return tuple(tuple(cell) for cell in cells)


def partition_pois(
    pois: Sequence[POI], shards: int, strategy: str = "spatial"
) -> tuple[tuple[POI, ...], ...]:
    """Partition the database into ``shards`` disjoint non-empty pieces.

    Every POI lands in exactly one shard and no shard is empty, so a
    merge over all shards sees exactly the single-LSP database.
    """
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    if len(pois) < shards:
        raise ConfigurationError(
            f"cannot split {len(pois)} POIs into {shards} non-empty shards"
        )
    if len({p.poi_id for p in pois}) != len(pois):
        raise ConfigurationError("duplicate poi_id values in the database")
    if strategy == "spatial":
        return spatial_partition(pois, shards)
    if strategy == "round-robin":
        return round_robin_partition(pois, shards)
    if strategy == "str":
        return str_partition(pois, shards)
    raise ConfigurationError(
        f"unknown partition strategy {strategy!r}; "
        f"known: {list(PARTITION_STRATEGIES)}"
    )
