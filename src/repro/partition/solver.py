"""Exact solver for the partition-parameter program of Eqns (7)-(10).

The program: choose the subgroup count ``alpha <= n`` and segment sizes
``(d_1, ..., d_beta)`` with ``sum d_i = d`` minimizing the candidate-query
count ``delta' = sum d_i ** alpha`` subject to ``delta' >= delta``.

The paper notes the problem is a nonlinear integer program (NP-hard in
general) and precomputes solutions offline with the Bonmin MINLP solver.
At the instance sizes that occur here (d <= 64) it is solvable *exactly*
by dynamic programming: for each fixed ``alpha`` this is an unbounded
knapsack over part sizes, where a part of size ``x`` has weight ``x`` and
cost ``x ** alpha``, and we want the cheapest cost >= delta at total weight
exactly d.  Partial cost sums only grow, so costs at or above the best
bound found so far can be pruned.  Results are memoized, mirroring the
paper's "compute once offline" usage.

A brute-force enumerator over all integer partitions is included for
property-testing the DP.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ConfigurationError, InfeasibleError


@dataclass(frozen=True, slots=True)
class PartitionParameters:
    """The solved partition parameters {n-bar, d-bar} plus delta'.

    ``subgroup_sizes`` partitions the n users into alpha subgroups and
    ``segment_sizes`` partitions each length-d location set into beta
    segments; ``delta_prime`` is the number of candidate queries LSP will
    generate, guaranteed >= the requested delta.
    """

    subgroup_sizes: tuple[int, ...]
    segment_sizes: tuple[int, ...]
    delta_prime: int

    @property
    def alpha(self) -> int:
        """Number of subgroups."""
        return len(self.subgroup_sizes)

    @property
    def beta(self) -> int:
        """Number of segments."""
        return len(self.segment_sizes)

    @property
    def n(self) -> int:
        return sum(self.subgroup_sizes)

    @property
    def d(self) -> int:
        return sum(self.segment_sizes)

    def __post_init__(self) -> None:
        if not self.subgroup_sizes or min(self.subgroup_sizes) < 1:
            raise ConfigurationError("subgroup sizes must be positive")
        if not self.segment_sizes or min(self.segment_sizes) < 1:
            raise ConfigurationError("segment sizes must be positive")
        expected = sum(size**self.alpha for size in self.segment_sizes)
        if expected != self.delta_prime:
            raise ConfigurationError(
                f"delta_prime {self.delta_prime} inconsistent with partition "
                f"(expected {expected})"
            )


def _split_evenly(total: int, parts: int) -> tuple[int, ...]:
    """Split ``total`` into ``parts`` positive integers differing by <= 1."""
    base, extra = divmod(total, parts)
    return tuple(base + 1 if i < extra else base for i in range(parts))


def _best_segments_for_alpha(
    d: int, delta: int, alpha: int, cap: int
) -> tuple[int, tuple[int, ...]] | None:
    """Cheapest segment multiset for a fixed alpha, or None when none beats ``cap``.

    Unbounded-knapsack DP: ``states[w]`` maps an achievable cost (sum of
    ``part ** alpha``) at total weight w to the non-increasing part tuple
    realizing it.  Part sizes are processed in descending order so every
    multiset is built exactly once (in non-increasing order).  Costs at or
    above ``cap`` are pruned: partial costs only grow, so they cannot beat
    the incumbent solution.  Returns the minimum cost >= delta at weight
    exactly d, with the lexicographically smallest realizing partition as
    the deterministic tie-break.
    """
    if d**alpha < delta:
        return None  # even a single segment of size d cannot reach delta
    states: list[dict[int, tuple[int, ...]]] = [dict() for _ in range(d + 1)]
    states[0][0] = ()
    for part in range(d, 0, -1):
        part_cost = part**alpha
        for weight in range(part, d + 1):
            source = states[weight - part]
            if not source:
                continue
            target = states[weight]
            for cost, parts in list(source.items()):
                if parts and parts[-1] < part:
                    continue  # keep parts non-increasing: no duplicates
                new_cost = cost + part_cost
                if new_cost >= cap:
                    continue
                new_parts = parts + (part,)
                existing = target.get(new_cost)
                if existing is None or new_parts < existing:
                    target[new_cost] = new_parts
    feasible = [(cost, parts) for cost, parts in states[d].items() if cost >= delta]
    if not feasible:
        return None  # every feasible cost was >= cap: the incumbent wins
    return min(feasible)


@lru_cache(maxsize=4096)
def solve_partition(n: int, d: int, delta: int) -> PartitionParameters:
    """Solve Eqns (7)-(10) exactly and return the optimal parameters.

    Ties on delta' prefer fewer subgroups (smaller alpha), then the
    lexicographically smallest segment tuple, so the result is canonical.
    Raises :class:`InfeasibleError` when ``delta > d ** n`` — the paper
    requires users to choose a larger d in that case.
    """
    if n < 1:
        raise ConfigurationError("n must be positive")
    if d < 1:
        raise ConfigurationError("d must be positive")
    if delta < 1:
        raise ConfigurationError("delta must be positive")
    if delta > d**n:
        raise InfeasibleError(
            f"delta={delta} exceeds d**n={d**n}; pick a larger d (Section 4.1)"
        )
    best: tuple[int, int, tuple[int, ...]] | None = None  # (delta', alpha, segments)
    cap = d**n + 1  # exclusive bound; any feasible solution beats the sentinel
    for alpha in range(1, n + 1):
        found = _best_segments_for_alpha(d, delta, alpha, cap)
        if found is None:
            continue
        cost, parts = found
        candidate = (cost, alpha, parts)
        if best is None or candidate < best:
            best = candidate
            cap = cost + 1  # later alphas must strictly beat (ties lose on alpha)
    if best is None:  # pragma: no cover - delta <= d**n guarantees feasibility
        raise InfeasibleError(f"no feasible partition for (n={n}, d={d}, delta={delta})")
    delta_prime, alpha, segments = best
    return PartitionParameters(
        subgroup_sizes=_split_evenly(n, alpha),
        segment_sizes=segments,
        delta_prime=delta_prime,
    )


def _partitions(total: int, max_part: int):
    """All integer partitions of ``total`` with parts <= max_part (descending)."""
    if total == 0:
        yield ()
        return
    for part in range(min(total, max_part), 0, -1):
        for rest in _partitions(total - part, part):
            yield (part,) + rest


def solve_partition_brute_force(n: int, d: int, delta: int) -> PartitionParameters:
    """Reference solver: enumerate every (alpha, partition) pair.

    Exponential in d; usable for d up to ~30.  Tests compare its optimum
    against :func:`solve_partition`.
    """
    if delta > d**n:
        raise InfeasibleError(f"delta={delta} exceeds d**n={d**n}")
    best: tuple[int, int, tuple[int, ...]] | None = None
    for alpha in range(1, n + 1):
        for parts in _partitions(d, d):
            cost = sum(p**alpha for p in parts)
            if cost < delta:
                continue
            candidate = (cost, alpha, parts)
            if best is None or candidate < best:
                best = candidate
    assert best is not None
    delta_prime, alpha, segments = best
    return PartitionParameters(
        subgroup_sizes=_split_evenly(n, alpha),
        segment_sizes=segments,
        delta_prime=delta_prime,
    )
