"""Partition parameters and candidate-query layout (Section 4.1).

PPGNN keeps every location set at size d yet presents LSP with at least
``delta`` candidate queries by partitioning the user group into ``alpha``
subgroups and every location set into ``beta`` segments.  This package
contains:

- :mod:`~repro.partition.solver` — an exact solver for the nonlinear
  integer program of Eqns (7)-(10) (the paper precomputes it offline with
  Bonmin; we solve exactly by dynamic programming and cache),
- :mod:`~repro.partition.layout` — the
  :class:`~repro.partition.layout.GroupLayout` that places real locations,
  computes the query index of Eqn (12), and enumerates the candidate query
  list in the canonical lexicographic order shared by users and LSP,
- :mod:`~repro.partition.spatial` — deterministic POI-database
  partitioning (balanced kd-style or round-robin) for the sharded
  serving cluster of :mod:`repro.cluster`.
"""

from repro.partition.layout import GroupLayout, PlacementPlan
from repro.partition.solver import PartitionParameters, solve_partition
from repro.partition.spatial import (
    PARTITION_STRATEGIES,
    partition_pois,
    round_robin_partition,
    spatial_partition,
)

__all__ = [
    "PARTITION_STRATEGIES",
    "PartitionParameters",
    "solve_partition",
    "GroupLayout",
    "PlacementPlan",
    "partition_pois",
    "round_robin_partition",
    "spatial_partition",
]
