"""Candidate-query layout shared by the coordinator and the LSP (Section 4.1).

Given the solved :class:`~repro.partition.solver.PartitionParameters`, this
module defines the *canonical candidate-query order* both sides must agree
on: segments in order, and within a segment the subgroup positions
``(x_1, ..., x_alpha)`` in lexicographic order.  The coordinator uses it to
compute the query index of Eqn (12); the LSP uses it to enumerate the
candidate-query list of Eqn (6).  All indices here are 0-based (the paper
is 1-based); Eqn (12)'s ``+1`` disappears accordingly.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterator, Sequence, TypeVar

from repro.errors import ConfigurationError
from repro.partition.solver import PartitionParameters

T = TypeVar("T")


@dataclass(frozen=True, slots=True)
class PlacementPlan:
    """Where the real locations go, as drawn by the coordinator (Alg 1, lines 3-7).

    Attributes
    ----------
    segment:
        The chosen segment index (0-based), drawn with probability
        proportional to segment size (Eqn 11).
    relative_positions:
        Per-subgroup position ``x_j`` inside the segment (0-based).
    absolute_positions:
        Per-subgroup position ``pos_j`` over the whole location set — the
        value broadcast to the subgroup's users.
    query_index:
        The position of the real query in the canonical candidate list
        (Eqn 12, 0-based) — the hot index of the encrypted indicator.
    """

    segment: int
    relative_positions: tuple[int, ...]
    absolute_positions: tuple[int, ...]
    query_index: int


class GroupLayout:
    """Deterministic geometry of subgroups, segments, and candidate queries."""

    def __init__(self, params: PartitionParameters) -> None:
        self.params = params
        self._segment_offsets = []
        offset = 0
        for size in params.segment_sizes:
            self._segment_offsets.append(offset)
            offset += size
        self._subgroup_of_user: list[int] = []
        for j, size in enumerate(params.subgroup_sizes):
            self._subgroup_of_user.extend([j] * size)

    # ------------------------------------------------------------ structure

    @property
    def n(self) -> int:
        return self.params.n

    @property
    def d(self) -> int:
        return self.params.d

    @property
    def alpha(self) -> int:
        return self.params.alpha

    @property
    def beta(self) -> int:
        return self.params.beta

    @property
    def delta_prime(self) -> int:
        """Length of the candidate query list."""
        return self.params.delta_prime

    def segment_offset(self, segment: int) -> int:
        """Absolute position of the first slot of ``segment``."""
        return self._segment_offsets[segment]

    def subgroup_of_user(self, user_index: int) -> int:
        """Which subgroup user ``user_index`` belongs to.

        Users are assigned to subgroups in id order: the first ``n_1`` users
        form subgroup 0, the next ``n_2`` subgroup 1, and so on — exactly
        how the LSP reconstructs subgroups from user ids (Section 4.2).
        """
        if not 0 <= user_index < self.n:
            raise ConfigurationError(f"user index {user_index} out of range")
        return self._subgroup_of_user[user_index]

    def users_of_subgroup(self, subgroup: int) -> range:
        """The contiguous user-index range of one subgroup."""
        if not 0 <= subgroup < self.alpha:
            raise ConfigurationError(f"subgroup {subgroup} out of range")
        start = sum(self.params.subgroup_sizes[:subgroup])
        return range(start, start + self.params.subgroup_sizes[subgroup])

    # ---------------------------------------------------------- query index

    def query_index(self, segment: int, relative_positions: Sequence[int]) -> int:
        """Eqn (12), 0-based: position of a candidate in the canonical list."""
        if not 0 <= segment < self.beta:
            raise ConfigurationError(f"segment {segment} out of range")
        if len(relative_positions) != self.alpha:
            raise ConfigurationError(
                f"expected {self.alpha} positions, got {len(relative_positions)}"
            )
        seg_size = self.params.segment_sizes[segment]
        index = sum(size**self.alpha for size in self.params.segment_sizes[:segment])
        for j, x in enumerate(relative_positions):
            if not 0 <= x < seg_size:
                raise ConfigurationError(
                    f"position {x} outside segment of size {seg_size}"
                )
            index += x * seg_size ** (self.alpha - 1 - j)
        return index

    def position_of_index(self, query_index: int) -> tuple[int, tuple[int, ...]]:
        """Inverse of :meth:`query_index` (used by tests and the LSP's bookkeeping)."""
        if not 0 <= query_index < self.delta_prime:
            raise ConfigurationError(f"query index {query_index} out of range")
        remaining = query_index
        for segment, size in enumerate(self.params.segment_sizes):
            block = size**self.alpha
            if remaining < block:
                positions = []
                for _ in range(self.alpha):
                    block //= size
                    positions.append(remaining // block)
                    remaining %= block
                return segment, tuple(positions)
            remaining -= block
        raise AssertionError("unreachable: query_index validated above")

    # ------------------------------------------------------------ placement

    def plan_placement(self, rng: random.Random) -> PlacementPlan:
        """Draw the real-location placement (Algorithm 1, lines 3-7).

        The segment is drawn with probability ``size / d`` (Eqn 11) — this
        weighting is what makes every individual slot equally likely and
        gives the exact 1/d guarantee of Theorem 4.3.  Subgroup positions
        are uniform within the segment.
        """
        segment = rng.choices(
            range(self.beta), weights=self.params.segment_sizes, k=1
        )[0]
        seg_size = self.params.segment_sizes[segment]
        relative = tuple(rng.randrange(seg_size) for _ in range(self.alpha))
        offset = self.segment_offset(segment)
        absolute = tuple(offset + x for x in relative)
        return PlacementPlan(
            segment=segment,
            relative_positions=relative,
            absolute_positions=absolute,
            query_index=self.query_index(segment, relative),
        )

    # ----------------------------------------------------------- candidates

    def enumerate_candidates(
        self, location_sets: Sequence[Sequence[T]]
    ) -> Iterator[tuple[T, ...]]:
        """The canonical candidate-query list (Eqn 6), lazily.

        ``location_sets[i]`` is user i's length-d location set.  Yields
        ``delta_prime`` candidate queries, each an n-tuple holding one
        location per user, in the order :meth:`query_index` indexes.
        """
        if len(location_sets) != self.n:
            raise ConfigurationError(
                f"expected {self.n} location sets, got {len(location_sets)}"
            )
        for sets in location_sets:
            if len(sets) != self.d:
                raise ConfigurationError("every location set must have length d")
        for segment, size in enumerate(self.params.segment_sizes):
            offset = self.segment_offset(segment)
            for positions in itertools.product(range(size), repeat=self.alpha):
                yield tuple(
                    location_sets[user][offset + positions[self._subgroup_of_user[user]]]
                    for user in range(self.n)
                )

    def candidate_at(
        self, location_sets: Sequence[Sequence[T]], query_index: int
    ) -> tuple[T, ...]:
        """Random access into the candidate list without enumerating it."""
        segment, positions = self.position_of_index(query_index)
        offset = self.segment_offset(segment)
        return tuple(
            location_sets[user][offset + positions[self._subgroup_of_user[user]]]
            for user in range(self.n)
        )
