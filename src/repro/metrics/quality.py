"""Retrieval-quality metrics for (possibly approximate) kGNN answers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.datasets.poi import POI
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.gnn.aggregate import Aggregate


def answer_precision(returned_ids: Sequence[int], exact_ids: Sequence[int]) -> float:
    """Fraction of returned POIs that belong to the exact top-k."""
    if not returned_ids:
        raise ConfigurationError("cannot score an empty answer")
    exact = set(exact_ids)
    return sum(1 for pid in returned_ids if pid in exact) / len(returned_ids)


def answer_recall(returned_ids: Sequence[int], exact_ids: Sequence[int]) -> float:
    """Fraction of the exact top-k that was returned."""
    if not exact_ids:
        raise ConfigurationError("the exact answer must be non-empty")
    returned = set(returned_ids)
    return sum(1 for pid in exact_ids if pid in returned) / len(exact_ids)


def cost_ratio(
    returned: Sequence[POI],
    exact: Sequence[POI],
    locations: Sequence[Point],
    aggregate: Aggregate,
) -> float:
    """Mean aggregate cost of the returned POIs over the exact optimum's.

    1.0 means the returned answer is as good as exact; the excess over 1.0
    is the utility the users lose to the approximation.  Compared over the
    shorter of the two lists so sanitation-truncated answers stay fair.
    """
    if not returned or not exact:
        raise ConfigurationError("answers must be non-empty")
    depth = min(len(returned), len(exact))

    def mean_cost(pois: Sequence[POI]) -> float:
        costs = [
            aggregate(loc.distance_to(p.location) for loc in locations)
            for p in pois[:depth]
        ]
        return sum(costs) / depth

    optimum = mean_cost(exact)
    if optimum == 0.0:
        return 1.0
    return mean_cost(returned) / optimum


@dataclass(frozen=True, slots=True)
class PartialAnswerQuality:
    """A-priori quality estimate of a shard-degraded answer.

    Unlike :class:`AnswerQuality` this needs no ground truth: it is what
    a serving cluster can honestly promise about a
    :class:`~repro.cluster.merge.PartialAnswer` *at answer time*, when the
    lost shards' POIs are unreachable and the exact top-k is unknowable.
    """

    coverage: float
    expected_recall: float
    guaranteed_recall: float

    @property
    def complete(self) -> bool:
        return self.coverage == 1.0


def estimate_partial_quality(
    covered_pois: int, total_pois: int, k: int
) -> PartialAnswerQuality:
    """Estimate the recall of a top-k computed over a covered subset.

    Under the exchangeability prior (any POI equally likely to be in the
    exact top-k), the overlap between the top-k and a covered subset of
    size ``c`` out of ``t`` is hypergeometric with mean ``k * c / t``, so
    the expected recall is exactly the coverage fraction ``c / t``.  The
    guaranteed (worst-case) recall accounts for the pigeonhole floor: at
    most ``t - c`` of the exact top-k can hide in the lost shards, so at
    least ``k - (t - c)`` answers are certainly correct.
    """
    if total_pois < 1 or not 0 <= covered_pois <= total_pois:
        raise ConfigurationError(
            "need 0 <= covered_pois <= total_pois with total_pois >= 1"
        )
    if k < 1:
        raise ConfigurationError("k must be >= 1")
    coverage = covered_pois / total_pois
    lost = total_pois - covered_pois
    return PartialAnswerQuality(
        coverage=coverage,
        expected_recall=coverage,
        guaranteed_recall=max(0, k - lost) / k,
    )


def estimate_brownout_quality(
    k_requested: int, k_served: int
) -> PartialAnswerQuality:
    """Quality of a brownout answer: the exact top-``k_served`` of ``k``.

    Unlike a shard-degraded answer, a brownout answer is a *prefix* of
    the exact top-``k_requested`` (the engine serves the same query with
    a smaller k), so there is no uncertainty to average over: exactly
    ``k_served`` of the requested ``k_requested`` answers are returned
    and each one is certainly correct.  Coverage, expected recall, and
    guaranteed recall therefore all equal ``k_served / k_requested``.
    """
    if k_requested < 1:
        raise ConfigurationError("k_requested must be >= 1")
    if not 1 <= k_served <= k_requested:
        raise ConfigurationError("need 1 <= k_served <= k_requested")
    ratio = k_served / k_requested
    return PartialAnswerQuality(
        coverage=ratio,
        expected_recall=ratio,
        guaranteed_recall=ratio,
    )


@dataclass(frozen=True, slots=True)
class AnswerQuality:
    """Precision / recall / cost ratio of one answer against the exact top-k."""

    precision: float
    recall: float
    cost_ratio: float

    @property
    def exact(self) -> bool:
        """Whether the answer is indistinguishable from the exact optimum."""
        return self.precision == 1.0 and self.cost_ratio <= 1.0 + 1e-12


def evaluate_answer(
    returned: Sequence[POI],
    exact: Sequence[POI],
    locations: Sequence[Point],
    aggregate: Aggregate,
) -> AnswerQuality:
    """Bundle all three metrics for one (returned, exact) answer pair."""
    return AnswerQuality(
        precision=answer_precision(
            [p.poi_id for p in returned], [p.poi_id for p in exact]
        ),
        recall=answer_recall(
            [p.poi_id for p in returned], [p.poi_id for p in exact]
        ),
        cost_ratio=cost_ratio(returned, exact, locations, aggregate),
    )
