"""Answer-quality metrics.

The paper argues qualitatively that approximate schemes (APNN's
cell-center answers, GLP's centroid answers) "degrade the answer utility";
this package quantifies that with standard retrieval metrics plus an
aggregate-cost ratio, used by the answer-quality benchmark.
"""

from repro.metrics.quality import (
    AnswerQuality,
    answer_precision,
    answer_recall,
    cost_ratio,
    evaluate_answer,
)

__all__ = [
    "AnswerQuality",
    "answer_precision",
    "answer_recall",
    "cost_ratio",
    "evaluate_answer",
]
