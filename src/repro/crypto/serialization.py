"""Wire serialization for keys and ciphertexts.

The cost model in :mod:`repro.protocol.messages` charges ciphertexts by
their residue-class size; this module provides the matching concrete byte
encodings, so keys and ciphertexts can actually cross process boundaries
(files, sockets) — e.g. an LSP persisting a client's public key, or a
coordinator handing the group key to an audit log.

Format: a 4-byte magic, a 2-byte version, then length-prefixed big-endian
integers.  Private-key serialization exists for completeness (key escrow,
tests); treat its output as a secret.
"""

from __future__ import annotations

import math
import struct

from repro.crypto.paillier import (
    Ciphertext,
    KeyPair,
    PaillierPrivateKey,
    PaillierPublicKey,
)
from repro.errors import CryptoError

_MAGIC_PUBLIC = b"RPPK"
_MAGIC_PRIVATE = b"RPSK"
_MAGIC_CIPHER = b"RPCT"
_VERSION = 1


def _pack_int(value: int) -> bytes:
    """Length-prefixed big-endian encoding of a non-negative integer."""
    if value < 0:
        raise CryptoError("cannot serialize negative integers")
    raw = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
    return struct.pack(">I", len(raw)) + raw


def _unpack_int(data: bytes, offset: int) -> tuple[int, int]:
    """Decode one length-prefixed integer; returns (value, next offset).

    Only the canonical (minimal-length) encoding :func:`_pack_int` emits is
    accepted: zero-length bodies and redundant leading zero bytes are
    rejected, so every integer has exactly one byte representation and a
    tampered length prefix cannot smuggle in an equal-valued payload.
    """
    if offset + 4 > len(data):
        raise CryptoError("truncated integer length prefix")
    (length,) = struct.unpack_from(">I", data, offset)
    offset += 4
    if length == 0:
        raise CryptoError("zero-length integer body")
    if offset + length > len(data):
        raise CryptoError("truncated integer payload")
    raw = data[offset : offset + length]
    if length > 1 and raw[0] == 0:
        raise CryptoError("non-canonical integer encoding (leading zero bytes)")
    return int.from_bytes(raw, "big"), offset + length


def _pack_float(value: float) -> bytes:
    """Fixed-width big-endian float64 encoding (finite values only)."""
    if not math.isfinite(value):
        raise CryptoError("cannot serialize non-finite floats")
    return struct.pack(">d", value)


def _unpack_float(data: bytes, offset: int) -> tuple[float, int]:
    """Decode one float64; rejects non-finite values on the way in too."""
    if offset + 8 > len(data):
        raise CryptoError("truncated float payload")
    (value,) = struct.unpack_from(">d", data, offset)
    if not math.isfinite(value):
        raise CryptoError("non-finite float in serialized payload")
    return value, offset + 8


def _pack_str(value: str) -> bytes:
    """Length-prefixed UTF-8 string encoding."""
    raw = value.encode("utf-8")
    return struct.pack(">I", len(raw)) + raw


def _unpack_str(data: bytes, offset: int) -> tuple[str, int]:
    """Decode one length-prefixed UTF-8 string."""
    if offset + 4 > len(data):
        raise CryptoError("truncated string length prefix")
    (length,) = struct.unpack_from(">I", data, offset)
    offset += 4
    if offset + length > len(data):
        raise CryptoError("truncated string payload")
    try:
        value = data[offset : offset + length].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CryptoError("invalid UTF-8 in serialized string") from exc
    return value, offset + length


def _check_header(data: bytes, magic: bytes) -> int:
    if len(data) < 6:
        raise CryptoError("buffer too short for a header")
    if data[:4] != magic:
        raise CryptoError(f"bad magic: expected {magic!r}, got {data[:4]!r}")
    (version,) = struct.unpack_from(">H", data, 4)
    if version != _VERSION:
        raise CryptoError(
            f"unsupported serialization format version {version}; "
            f"this library reads only version {_VERSION}"
        )
    return 6


# Public aliases: other wire formats in this library (the session
# checkpoints of :mod:`repro.guard.checkpoint`) reuse the same hardened
# primitives so every byte-level rejection stays a CryptoError.
pack_int = _pack_int
unpack_int = _unpack_int
pack_float = _pack_float
unpack_float = _unpack_float
pack_str = _pack_str
unpack_str = _unpack_str
FORMAT_VERSION = _VERSION


def serialize_public_key(pk: PaillierPublicKey) -> bytes:
    """Encode a public key (the modulus N)."""
    return _MAGIC_PUBLIC + struct.pack(">H", _VERSION) + _pack_int(pk.n)


def deserialize_public_key(data: bytes) -> PaillierPublicKey:
    """Inverse of :func:`serialize_public_key`."""
    offset = _check_header(data, _MAGIC_PUBLIC)
    n, offset = _unpack_int(data, offset)
    if offset != len(data):
        raise CryptoError("trailing bytes after public key")
    return PaillierPublicKey(n)


def serialize_private_key(sk: PaillierPrivateKey) -> bytes:
    """Encode a private key (p and q).  The output is a secret."""
    return (
        _MAGIC_PRIVATE
        + struct.pack(">H", _VERSION)
        + _pack_int(sk.p)
        + _pack_int(sk.q)
    )


def deserialize_private_key(data: bytes) -> KeyPair:
    """Inverse of :func:`serialize_private_key`; rebuilds the full pair."""
    offset = _check_header(data, _MAGIC_PRIVATE)
    p, offset = _unpack_int(data, offset)
    q, offset = _unpack_int(data, offset)
    if offset != len(data):
        raise CryptoError("trailing bytes after private key")
    public = PaillierPublicKey(p * q)
    return KeyPair(PaillierPrivateKey(public, p, q), public)


def serialize_ciphertext(c: Ciphertext) -> bytes:
    """Encode a ciphertext (level + value).  The key travels separately."""
    return (
        _MAGIC_CIPHER
        + struct.pack(">HB", _VERSION, c.s)
        + _pack_int(c.value)
    )


def deserialize_ciphertext(data: bytes, pk: PaillierPublicKey) -> Ciphertext:
    """Inverse of :func:`serialize_ciphertext` under a known public key."""
    offset = _check_header(data, _MAGIC_CIPHER)
    if offset + 1 > len(data):
        raise CryptoError("truncated ciphertext level")
    s = data[offset]
    if s < 1:
        raise CryptoError("ciphertext level must be >= 1")
    offset += 1
    value, offset = _unpack_int(data, offset)
    if offset != len(data):
        raise CryptoError("trailing bytes after ciphertext")
    if not 0 <= value < pk.ciphertext_modulus(s):
        raise CryptoError("ciphertext value outside the key's residue space")
    return Ciphertext(value=value, s=s, public_key=pk)
