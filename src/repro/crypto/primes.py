"""Probabilistic primality testing and random prime generation.

The key generator needs two random primes of ``keysize / 2`` bits.  We use
Miller–Rabin with a deterministic witness set for 64-bit inputs and random
witnesses above that, preceded by trial division against small primes —
the standard construction cryptographic libraries use.
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError

# Small primes for fast trial division before the expensive MR rounds.
_SMALL_PRIMES: list[int] = []


def _init_small_primes(limit: int = 1000) -> None:
    sieve = bytearray([1]) * (limit + 1)
    sieve[0:2] = b"\x00\x00"
    for i in range(2, int(limit**0.5) + 1):
        if sieve[i]:
            sieve[i * i :: i] = b"\x00" * len(sieve[i * i :: i])
    _SMALL_PRIMES.extend(i for i in range(2, limit + 1) if sieve[i])


_init_small_primes()

# Deterministic Miller-Rabin witnesses covering all n < 3.3 * 10^24.
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """One MR round; returns True when ``n`` passes for witness ``a``."""
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rounds: int = 40, rng: random.Random | None = None) -> bool:
    """Miller–Rabin primality test.

    Deterministic (exact) for ``n`` below ~3.3e24; otherwise probabilistic
    with error probability at most ``4**-rounds``.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if n < 3_317_044_064_679_887_385_961_981:
        witnesses: tuple[int, ...] | list[int] = _DETERMINISTIC_WITNESSES
    else:
        rng = rng or random.Random()
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]
    return all(_miller_rabin_round(n, a % n, d, r) for a in witnesses if a % n not in (0, 1))


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime with exactly ``bits`` bits.

    The top two bits are forced to 1 so the product of two such primes has
    exactly ``2 * bits`` bits, giving a modulus of the requested key size.
    """
    if bits < 8:
        raise ConfigurationError("prime size must be at least 8 bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def generate_distinct_primes(bits: int, rng: random.Random) -> tuple[int, int]:
    """Two distinct random primes of ``bits`` bits each."""
    p = generate_prime(bits, rng)
    q = generate_prime(bits, rng)
    while q == p:
        q = generate_prime(bits, rng)
    return p, q
