"""Fast modular-exponentiation kernels with exact multiplication ledgers.

Pure-Python Paillier spends essentially all of its time in three shapes of
modular exponentiation, and each shape admits a classical speedup:

- **Fixed exponent, varying base** — the nonce exponentiation
  ``r^{N^s} mod N^{s+1}``: the exponent is a per-(key, s) constant, so its
  sliding-window *program* (:class:`WindowPlan`) is decomposed once and
  reused for every nonce.  Per call only the small odd-power table of the
  base is built; the squaring chain and window digits are fixed.
- **Many bases at once** — the homomorphic dot product
  ``prod c_i^{x_i} mod N^{s+1}``: :func:`multi_pow` interleaves the
  per-term windows over one shared squaring chain (Straus/Shamir), paying
  ``max_i bits(x_i)`` squarings total instead of per term.
- **Known factorization** — any exponentiation the secret-key holder runs
  in the ciphertext group: :class:`CrtPow` splits it into two half-width
  chains modulo ``p^{s+1}`` / ``q^{s+1}`` with per-prime order-reduced
  exponents, recombined by Garner.

Every kernel is *value-identical* to the builtin ``pow`` it replaces and
never consumes randomness, so ciphertexts, answers, and digests are byte
for byte the same with fast paths on or off.  What changes is the exact
multiplication count, which each kernel reports through an optional
:class:`MulLedger` and through analytic cost properties derived from the
*same* window decomposition the evaluator executes — the profiler
(:mod:`repro.obs.profile`) and the perf sentinel consume those counts, so
the speedups are gated as dropping integers, not as wall-clock noise.

The module-level switch (:func:`set_enabled`, honoring ``REPRO_FASTEXP=0``
at import) lets callers and CI prove the on/off equivalence.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.crypto.modmath import invmod
from repro.errors import CryptoError

#: Largest window width ever considered; 2^(w-1) table entries per base.
MAX_WINDOW = 8

_enabled = os.environ.get("REPRO_FASTEXP", "1") != "0"


def enabled() -> bool:
    """Whether the fast paths are active (default on; ``REPRO_FASTEXP=0``)."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Flip the fast paths on/off; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


@contextmanager
def forced(flag: bool) -> Iterator[None]:
    """Temporarily force the fast paths on or off (equivalence proofs)."""
    previous = set_enabled(flag)
    try:
        yield
    finally:
        set_enabled(previous)


@dataclass
class MulLedger:
    """A running big-integer multiplication count, threaded through kernels."""

    muls: int = 0

    def add(self, count: int) -> None:
        """Record ``count`` more modular multiplications."""
        self.muls += count


def binary_pow_cost(exponent: int) -> int:
    """Multiplications of plain square-and-multiply (the pre-window model)."""
    e = abs(exponent)
    if e <= 1:
        return 0
    return (e.bit_length() - 1) + (e.bit_count() - 1)


def _decompose(exponent: int, window: int) -> list[tuple[int, int]]:
    """MSB-first sliding-window program for ``exponent``.

    Returns ``[(shift, digit), ...]`` evaluated as
    ``acc = acc^(2^shift) * table[digit]`` (``digit == 0`` means squarings
    only); the first entry seeds ``acc = table[digit]`` with no squarings.
    Digits are odd and below ``2^window``, so one odd-power table serves
    the whole program.
    """
    if exponent < 0:
        raise CryptoError("window decomposition needs a non-negative exponent")
    if not 1 <= window <= MAX_WINDOW:
        raise CryptoError(f"window width must be in [1, {MAX_WINDOW}]")
    program: list[tuple[int, int]] = []
    i = exponent.bit_length() - 1
    pending = 0
    while i >= 0:
        if not (exponent >> i) & 1:
            pending += 1
            i -= 1
            continue
        width = min(window, i + 1)
        chunk = (exponent >> (i + 1 - width)) & ((1 << width) - 1)
        while not chunk & 1:  # keep digits odd: defer trailing zeros
            chunk >>= 1
            width -= 1
        program.append((pending + width, chunk))
        pending = 0
        i -= width
    if pending:
        program.append((pending, 0))
    return program


def _table_muls(max_digit: int) -> int:
    """Multiplications to build the odd powers ``base^1 .. base^max_digit``.

    ``base^2`` costs one squaring, then each further odd power one multiply.
    """
    return 0 if max_digit <= 1 else 1 + (max_digit - 1) // 2


class WindowPlan:
    """The reusable sliding-window program of one *fixed* exponent.

    Decomposing the exponent costs zero multiplications, so a plan is pure
    precomputation: build once per (key, level), evaluate many times.  The
    per-call cost splits into :attr:`table_muls` (the odd-power table of
    the fresh base) and :attr:`chain_muls` (squarings plus window
    multiplies) — reported separately because the profiler charges window
    tables apart from per-call chain work.
    """

    __slots__ = ("exponent", "window", "program", "max_digit")

    def __init__(self, exponent: int, window: int) -> None:
        self.exponent = exponent
        self.window = window
        self.program = _decompose(exponent, window)
        self.max_digit = max((d for _, d in self.program), default=0)

    @property
    def table_muls(self) -> int:
        """Per-call multiplications spent on the base's odd-power table."""
        return _table_muls(self.max_digit)

    @property
    def chain_muls(self) -> int:
        """Per-call squarings plus window multiplies (table excluded)."""
        if not self.program:
            return 0
        squarings = sum(shift for shift, _ in self.program[1:])
        window_muls = sum(1 for _, digit in self.program[1:] if digit)
        return squarings + window_muls

    @property
    def per_call_muls(self) -> int:
        """Total exact multiplications of one :meth:`powmod` call."""
        return self.table_muls + self.chain_muls

    def powmod(
        self, base: int, modulus: int, ledger: MulLedger | None = None
    ) -> int:
        """``base^exponent mod modulus`` — value-identical to ``pow``."""
        if not self.program:
            return 1 % modulus
        base %= modulus
        table = {1: base}
        if self.max_digit > 1:
            base2 = base * base % modulus
            power = base
            for digit in range(3, self.max_digit + 1, 2):
                power = power * base2 % modulus
                table[digit] = power
        acc: int | None = None
        for shift, digit in self.program:
            if acc is None:
                acc = table[digit]
                continue
            for _ in range(shift):
                acc = acc * acc % modulus
            if digit:
                acc = acc * table[digit] % modulus
        if ledger is not None:
            ledger.add(self.per_call_muls)
        return acc


def plan(exponent: int, window: int | None = None) -> WindowPlan:
    """The cheapest :class:`WindowPlan` for ``exponent``.

    With ``window=None`` every width in ``[1, MAX_WINDOW]`` is costed
    exactly and the first minimum wins — deterministic, and ``O(bits)``
    per candidate, which is negligible against even one evaluation.
    """
    if window is not None:
        return WindowPlan(exponent, window)
    best: WindowPlan | None = None
    for width in range(1, MAX_WINDOW + 1):
        candidate = WindowPlan(exponent, width)
        if best is None or candidate.per_call_muls < best.per_call_muls:
            best = candidate
    return best


def default_window(bits: int) -> int:
    """A good per-term window width for a ``bits``-long *varying* exponent.

    Minimizes the expected marginal cost ``table + windows`` a term adds
    to a shared-squaring multi-exponentiation: ``2^(w-1)`` table entries
    against roughly ``bits / (w + 1)`` window multiplies.
    """
    if bits <= 1:
        return 1
    best_width, best_cost = 1, float("inf")
    for width in range(1, MAX_WINDOW + 1):
        cost = (1 << (width - 1)) + (bits - 1) / (width + 1)
        if cost < best_cost:
            best_width, best_cost = width, cost
    return best_width


def _multi_programs(
    exponents: Sequence[int], window: int | None
) -> list[list[tuple[int, int]]]:
    """Per-exponent window programs with absolute bit positions.

    Each program is ``[(lsb_position, digit), ...]`` — the digit is
    multiplied in when the shared squaring chain reaches its least
    significant bit.
    """
    programs = []
    for exponent in exponents:
        width = window if window is not None else default_window(
            exponent.bit_length()
        )
        events = []
        position = exponent.bit_length() - 1
        while position >= 0:
            if not (exponent >> position) & 1:
                position -= 1
                continue
            take = min(width, position + 1)
            chunk = (exponent >> (position + 1 - take)) & ((1 << take) - 1)
            while not chunk & 1:
                chunk >>= 1
                take -= 1
            events.append((position + 1 - take, chunk))
            position -= take
        programs.append(events)
    return programs


def _multi_cost(programs: Sequence[Sequence[tuple[int, int]]]) -> int:
    """Exact multiplication count of evaluating ``programs`` interleaved."""
    total_events = sum(len(events) for events in programs)
    if total_events == 0:
        return 0
    tables = sum(
        _table_muls(max(digit for _, digit in events))
        for events in programs
        if events
    )
    first = max(events[0][0] for events in programs if events)
    return tables + first + total_events - 1


def multi_pow_cost(
    exponents: Sequence[int], window: int | None = None
) -> int:
    """Exact multiplications :func:`multi_pow` will spend on ``exponents``."""
    return _multi_cost(_multi_programs(exponents, window))


def multi_pow(
    pairs: Sequence[tuple[int, int]],
    modulus: int,
    window: int | None = None,
    ledger: MulLedger | None = None,
) -> int:
    """``prod base_i^{exponent_i} mod modulus`` via interleaved windows.

    The Straus/Shamir trick: one squaring chain of ``max_i bits(e_i)``
    steps shared by every term, with per-term odd-power tables.  Exact
    cost is :func:`multi_pow_cost` of the same exponents (asserted equal
    in tests); value-identical to the product of builtin ``pow`` calls.
    """
    exponents = [exponent for _, exponent in pairs]
    for exponent in exponents:
        if exponent < 0:
            raise CryptoError("multi_pow needs non-negative exponents")
    programs = _multi_programs(exponents, window)
    events_at: dict[int, list[tuple[int, int]]] = {}
    tables: list[dict[int, int]] = []
    for (base, _), events in zip(pairs, programs, strict=True):
        index = len(tables)
        base %= modulus
        table = {1: base}
        max_digit = max((digit for _, digit in events), default=0)
        if max_digit > 1:
            base2 = base * base % modulus
            power = base
            for digit in range(3, max_digit + 1, 2):
                power = power * base2 % modulus
                table[digit] = power
        tables.append(table)
        for position, digit in events:
            events_at.setdefault(position, []).append((index, digit))
    if not events_at:
        return 1 % modulus
    acc: int | None = None
    for position in range(max(events_at), -1, -1):
        if acc is not None:
            acc = acc * acc % modulus
        for index, digit in events_at.get(position, ()):
            value = tables[index][digit]
            acc = value if acc is None else acc * value % modulus
    if ledger is not None:
        ledger.add(_multi_cost(programs))
    return acc


class CrtPow:
    """Half-width exponentiation for whoever knows ``N = p * q``.

    ``base^e mod N^{s+1}`` splits into chains modulo ``p^{s+1}`` and
    ``q^{s+1}`` whose exponents are reduced by the per-prime group orders
    ``p^s (p - 1)`` / ``q^s (q - 1)`` (valid for *unit* bases — Paillier
    nonces and honest ciphertext values are units), recombined by Garner.
    Each multiplication runs on half-width limbs, so the weighted work
    roughly halves even where the raw count does not; the ledger reports
    the honest raw count.
    """

    def __init__(self, p: int, q: int) -> None:
        if p == q:
            raise CryptoError("CRT exponentiation needs distinct primes")
        self.p = p
        self.q = q
        self._params: dict[int, tuple[int, int, int, int, int]] = {}

    def _level(self, s: int) -> tuple[int, int, int, int, int]:
        params = self._params.get(s)
        if params is None:
            ps1, qs1 = self.p ** (s + 1), self.q ** (s + 1)
            order_p = self.p**s * (self.p - 1)
            order_q = self.q**s * (self.q - 1)
            params = (ps1, qs1, order_p, order_q, invmod(qs1, ps1))
            self._params[s] = params
        return params

    def reduce(self, exponent: int, s: int = 1) -> tuple[int, int]:
        """The order-reduced per-prime exponents of ``exponent``."""
        _, _, order_p, order_q, _ = self._level(s)
        return exponent % order_p, exponent % order_q

    def cost(self, exponent: int, s: int = 1) -> int:
        """Exact multiplications of one :meth:`pow` call (Garner included)."""
        ep, eq = self.reduce(exponent, s)
        return binary_pow_cost(ep) + binary_pow_cost(eq) + 2

    def pow(
        self,
        base: int,
        exponent: int,
        s: int = 1,
        ledger: MulLedger | None = None,
    ) -> int:
        """``base^exponent mod (p*q)^{s+1}`` for a unit ``base``."""
        if exponent < 0:
            raise CryptoError("CRT exponentiation needs a non-negative exponent")
        ps1, qs1, _, _, q_inv = self._level(s)
        ep, eq = self.reduce(exponent, s)
        xp = pow(base % ps1, ep, ps1)
        xq = pow(base % qs1, eq, qs1)
        # Garner: x = xq + q^{s+1} * ((xp - xq) * (q^{s+1})^-1 mod p^{s+1}).
        if ledger is not None:
            ledger.add(self.cost(exponent, s))
        return xq + qs1 * ((xp - xq) * q_inv % ps1)
