"""Generalized Paillier cryptosystem eps_s of Damgård and Jurik [10].

The scheme is parameterized by ``s >= 1``: plaintexts live in ``Z_{N^s}``
and ciphertexts in ``Z*_{N^{s+1}}``.  ``s = 1`` is the classic Paillier
cryptosystem; the paper's PPGNN protocol uses ``s = 1`` throughout, and its
PPGNN-OPT optimization additionally uses ``s = 2`` so a whole eps_1
ciphertext fits inside an eps_2 plaintext (Section 6).  Encryption and
decryption with any ``s`` share the same key pair.

Construction (with the standard ``g = 1 + N`` simplification):

- ``Gen(keysize)``: pick primes p, q of ``keysize/2`` bits, ``N = p*q``,
  ``lambda = lcm(p-1, q-1)``.
- ``Enc_s(m)``: ``c = (1+N)^m * r^{N^s}  mod N^{s+1}`` with random
  ``r in Z*_N``.
- ``Dec_s(c)``: ``c^lambda mod N^{s+1}`` equals ``(1+N)^{m*lambda}``; the
  Damgård–Jurik extraction recursion recovers ``m*lambda mod N^s`` which is
  multiplied by ``lambda^{-1} mod N^s``.

``(1+N)^m`` is computed via the binomial expansion — it has only ``s + 1``
non-vanishing terms modulo ``N^{s+1}`` — instead of a full modular
exponentiation, the same trick GMP-based implementations use.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from math import gcd
from typing import NamedTuple

from repro.crypto import fastexp
from repro.crypto.modmath import factorial_inverse_table, invmod, lcm
from repro.crypto.primes import generate_distinct_primes
from repro.errors import CryptoError

#: Bound on the nonce rejection loop.  Each draw from ``Z_N`` is a non-unit
#: with probability ~2^-(keysize/2); this many consecutive failures means
#: the modulus is degenerate, not that we are unlucky.
_RANDOM_UNIT_ATTEMPTS = 128


@lru_cache(maxsize=64)
def _inv_fact_table(base: int, s: int) -> tuple[int, ...]:
    """Inverses of ``k! mod base^s`` for the extraction recursion.

    One shared implementation (:func:`~repro.crypto.modmath.
    factorial_inverse_table`), cached per (key modulus, level): the same
    table is rebuilt for every decryption otherwise — N, p, and q each
    appear here once per level in a long-running process.
    """
    return tuple(factorial_inverse_table(s, base**s))


def _extract_dlog(u: int, base: int, s: int) -> int:
    """Discrete log of ``u`` to base ``1 + base`` modulo ``base^{s+1}``.

    The Damgård–Jurik extraction recursion of [10], written over an
    arbitrary modulus base so it serves both the classic path (``base = N``)
    and the CRT fast path (``base = p`` and ``base = q`` separately, with
    half-size arithmetic).  ``u`` must be congruent to 1 modulo ``base``;
    the recursion rebuilds the base-``base`` digits of the exponent one
    level at a time, correcting with binomial terms.
    """
    powers = [1] * (s + 2)
    for j in range(1, s + 2):
        powers[j] = powers[j - 1] * base
    inv_fact = _inv_fact_table(base, s)
    m = 0
    for j in range(1, s + 1):
        mod_j = powers[j]
        t1 = (u % powers[j + 1] - 1) // base  # the L function, exact
        t2 = m
        running = m
        for k in range(2, j + 1):
            running -= 1
            t2 = t2 * running % mod_j
            t1 = (t1 - t2 * powers[k - 1] % mod_j * inv_fact[k]) % mod_j
        m = t1 % mod_j
    return m


@dataclass(frozen=True, slots=True)
class Ciphertext:
    """A Damgård–Jurik ciphertext: a value in ``Z*_{N^{s+1}}``.

    Carries the encryption level ``s`` and the public key so homomorphic
    operators can validate compatibility.  The PPGNN-OPT protocol treats an
    ``s = 1`` ciphertext *value* as an ``s = 2`` plaintext — accessed via
    :attr:`value`.
    """

    value: int
    s: int
    public_key: "PaillierPublicKey"

    def __post_init__(self) -> None:
        if self.s < 1:
            raise CryptoError("ciphertext level s must be >= 1")

    @property
    def byte_size(self) -> int:
        """Wire size of this ciphertext (an element of ``Z_{N^{s+1}}``)."""
        return self.public_key.ciphertext_bytes(self.s)

    def __add__(self, other: "Ciphertext") -> "Ciphertext":
        from repro.crypto.homomorphic import hom_add

        return hom_add(self, other)

    def __rmul__(self, scalar: int) -> "Ciphertext":
        from repro.crypto.homomorphic import hom_scalar_mul

        return hom_scalar_mul(scalar, self)


class PaillierPublicKey:
    """Public key: the modulus N plus cached powers of N."""

    __slots__ = ("n", "_n_powers", "_nonce_plans")

    def __init__(self, n: int) -> None:
        if n < 15:
            raise CryptoError("modulus too small")
        self.n = n
        self._n_powers: dict[int, int] = {0: 1, 1: n}
        self._nonce_plans: dict[int, fastexp.WindowPlan] = {}

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PaillierPublicKey) and self.n == other.n

    def __hash__(self) -> int:
        return hash(("PaillierPublicKey", self.n))

    def __repr__(self) -> str:
        return f"PaillierPublicKey(bits={self.key_bits})"

    @property
    def key_bits(self) -> int:
        """Key size in bits (the bit length of N)."""
        return self.n.bit_length()

    def n_pow(self, e: int) -> int:
        """``N ** e`` with memoization (moduli are reused constantly)."""
        cached = self._n_powers.get(e)
        if cached is None:
            cached = self.n**e
            self._n_powers[e] = cached
        return cached

    def plaintext_modulus(self, s: int = 1) -> int:
        """The plaintext space modulus ``N^s``."""
        return self.n_pow(s)

    def ciphertext_modulus(self, s: int = 1) -> int:
        """The ciphertext space modulus ``N^{s+1}``."""
        return self.n_pow(s + 1)

    def ciphertext_bytes(self, s: int = 1) -> int:
        """Wire size in bytes of one level-``s`` ciphertext.

        An eps_1 ciphertext occupies ``2 * keysize / 8`` bytes and an eps_2
        ciphertext ``3 * keysize / 8`` — the L_e and 2x-L_e lengths of the
        paper's cost analysis (Sections 6-7).
        """
        return ((s + 1) * self.key_bits + 7) // 8

    def g_pow(self, m: int, s: int = 1) -> int:
        """``(1 + N)^m mod N^{s+1}`` via the s-term binomial expansion.

        Uses ``C(m, i) mod N^{s+1}`` computed iteratively with modular
        inverses of the (small, N-coprime) integers ``i``.
        """
        mod = self.ciphertext_modulus(s)
        m_mod = m % mod
        acc = 1
        coeff = 1
        n_power = 1
        for i in range(1, s + 1):
            coeff = coeff * ((m_mod - i + 1) % mod) % mod
            coeff = coeff * invmod(i, mod) % mod
            n_power = n_power * self.n
            acc = (acc + coeff * n_power) % mod
        return acc

    def nonce_plan(self, s: int = 1) -> fastexp.WindowPlan:
        """The cached window program of the fixed nonce exponent ``N^s``.

        Decomposed once per (key, level) — zero multiplications — and
        shared by :meth:`encrypt`, :meth:`rerandomize`, and the nonce
        pool's refills.
        """
        plan = self._nonce_plans.get(s)
        if plan is None:
            plan = fastexp.plan(self.n_pow(s))
            self._nonce_plans[s] = plan
        return plan

    def obfuscate(self, r: int, s: int = 1) -> int:
        """The obfuscation factor ``r^{N^s} mod N^{s+1}`` of nonce ``r``."""
        mod_cipher = self.ciphertext_modulus(s)
        if fastexp.enabled():
            return self.nonce_plan(s).powmod(r, mod_cipher)
        return pow(r, self.n_pow(s), mod_cipher)

    def random_unit(self, rng: random.Random) -> int:
        """A random element of ``Z*_N`` (the encryption nonce r)."""
        # A unit check via gcd; failure would expose a factor of N and is
        # astronomically unlikely for honest keys, so repeated failures can
        # only mean the modulus itself is degenerate.
        for _ in range(_RANDOM_UNIT_ATTEMPTS):
            r = rng.randrange(1, self.n)
            if gcd(r, self.n) == 1:
                return r
        raise CryptoError(
            f"no unit found in Z*_N after {_RANDOM_UNIT_ATTEMPTS} draws; "
            "the modulus is degenerate (far too many small factors)"
        )

    def encrypt(
        self,
        plaintext: int,
        s: int = 1,
        rng: random.Random | None = None,
        secure: bool = True,
    ) -> Ciphertext:
        """Encrypt ``plaintext`` under level ``s``.

        ``secure=False`` skips the random-nonce exponentiation (r = 1); the
        result is deterministic and NOT semantically secure — used only by
        tests and micro-benchmarks that isolate other costs.
        """
        mod_plain = self.plaintext_modulus(s)
        if not 0 <= plaintext < mod_plain:
            raise CryptoError(
                f"plaintext out of range for s={s}: need 0 <= m < N^{s}"
            )
        value = self.g_pow(plaintext, s)
        if secure:
            rng = rng or random.Random()
            r = self.random_unit(rng)
            mod_cipher = self.ciphertext_modulus(s)
            value = value * self.obfuscate(r, s) % mod_cipher
        return Ciphertext(value=value, s=s, public_key=self)

    def encrypt_with_factor(
        self, plaintext: int, factor: int, s: int = 1
    ) -> Ciphertext:
        """Encrypt with a ready-made obfuscation factor ``r^{N^s}``.

        The nonce-pool path: the expensive exponentiation already happened
        offline, so only the binomial ``(1+N)^m`` and one combine multiply
        remain.  The factor must come from :meth:`obfuscate` (or a pool
        refilled under *this* key) for the ciphertext to be decryptable.
        """
        mod_plain = self.plaintext_modulus(s)
        if not 0 <= plaintext < mod_plain:
            raise CryptoError(
                f"plaintext out of range for s={s}: need 0 <= m < N^{s}"
            )
        mod_cipher = self.ciphertext_modulus(s)
        value = self.g_pow(plaintext, s) * factor % mod_cipher
        return Ciphertext(value=value, s=s, public_key=self)

    def rerandomize(self, c: Ciphertext, rng: random.Random) -> Ciphertext:
        """Multiply by a fresh encryption of zero (same plaintext, new nonce)."""
        if c.public_key != self:
            raise CryptoError("ciphertext does not belong to this key")
        mod_cipher = self.ciphertext_modulus(c.s)
        r = self.random_unit(rng)
        value = c.value * self.obfuscate(r, c.s) % mod_cipher
        return Ciphertext(value=value, s=c.s, public_key=self)


class PaillierPrivateKey:
    """Secret key: the factorization of N, plus decryption precomputations."""

    __slots__ = (
        "public_key",
        "p",
        "q",
        "lam",
        "_lam_inv_cache",
        "_crt",
        "_crt_s",
        "_prime_plans",
        "_crt_pow",
    )

    def __init__(self, public_key: PaillierPublicKey, p: int, q: int) -> None:
        if p * q != public_key.n:
            raise CryptoError("p * q does not match the public modulus")
        if p == q:
            raise CryptoError("p and q must be distinct")
        self.public_key = public_key
        self.p = p
        self.q = q
        self.lam = lcm(p - 1, q - 1)
        self._lam_inv_cache: dict[int, int] = {}
        self._crt: tuple[int, int, int, int, int] | None = None
        self._crt_s: dict[int, tuple[int, int, int, int, int]] = {}
        self._prime_plans: tuple[fastexp.WindowPlan, fastexp.WindowPlan] | None = None
        self._crt_pow: fastexp.CrtPow | None = None

    def prime_plans(self) -> tuple[fastexp.WindowPlan, fastexp.WindowPlan]:
        """Window programs of the fixed CRT exponents ``p - 1`` and ``q - 1``.

        A plan depends only on its exponent, so the same pair serves every
        Damgård–Jurik level (the per-level modulus changes, the exponent
        does not).
        """
        plans = self._prime_plans
        if plans is None:
            plans = (fastexp.plan(self.p - 1), fastexp.plan(self.q - 1))
            self._prime_plans = plans
        return plans

    def crt_pow(
        self,
        base: int,
        exponent: int,
        s: int = 1,
        ledger: "fastexp.MulLedger | None" = None,
    ) -> int:
        """``base^exponent mod N^{s+1}`` at half width, for unit bases.

        The secret-key holder's general-purpose exponentiation: two
        order-reduced chains modulo ``p^{s+1}`` / ``q^{s+1}`` plus Garner
        (see :class:`~repro.crypto.fastexp.CrtPow`).  The coordinator owns
        the key pair, so its own nonce-pool refills run here instead of
        full width.
        """
        if self._crt_pow is None:
            self._crt_pow = fastexp.CrtPow(self.p, self.q)
        return self._crt_pow.pow(base, exponent, s, ledger)

    def __repr__(self) -> str:
        return f"PaillierPrivateKey(bits={self.public_key.key_bits})"

    def _lam_inv(self, s: int) -> int:
        """``lambda^{-1} mod N^s``, cached per level."""
        inv = self._lam_inv_cache.get(s)
        if inv is None:
            inv = invmod(self.lam, self.public_key.n_pow(s))
            self._lam_inv_cache[s] = inv
        return inv

    def _extract(self, u: int, s: int) -> int:
        """Damgård–Jurik recursion: recover ``m mod N^s`` from ``(1+N)^m``.

        ``u`` must be congruent to 1 modulo N.  Builds the base-N digits of
        ``m`` one level at a time, correcting with binomial terms (the
        published decryption algorithm of [10]).
        """
        return _extract_dlog(u, self.public_key.n, s)

    def decrypt(self, c: Ciphertext, use_crt: bool = True) -> int:
        """Decrypt a level-``s`` ciphertext back to its plaintext in ``Z_{N^s}``.

        The CRT fast path is used by default at every level: half-size
        exponents and moduli per prime factor (the standard Paillier
        optimization, generalized to Damgård–Jurik levels ``s >= 2``).
        Pass ``use_crt=False`` to force the generic path — both are exact,
        and the equivalence test compares them across s in {1, 2, 3}.
        """
        return self.decrypt_with_path(c, use_crt)[0]

    def decrypt_with_path(
        self, c: Ciphertext, use_crt: bool = True
    ) -> tuple[int, str]:
        """Decrypt and report which path ran: ``"crt"`` or ``"generic"``.

        The CRT path is only an optimization of the generic one when its
        preconditions hold; it silently falls back when they do not:

        - ``p == q`` (a degenerate key smuggled past the constructor) makes
          Garner recombination divide by ``gcd(p, q) != 1``;
        - a ciphertext value sharing a factor with N (an adversarial value
          such as 0, p, or a multiple — never produced by honest
          encryption, whose values are units) breaks the per-prime
          exponent-order argument and the two paths diverge.

        Honest ciphertexts always take the CRT path, so the fallback does
        not change any previously-correct output.  The path tag feeds the
        ``crypto.decryptions.crt`` / ``.generic`` metrics split.
        """
        if c.public_key != self.public_key:
            raise CryptoError("ciphertext was produced under a different key")
        if use_crt and self.p != self.q and gcd(c.value, self.public_key.n) == 1:
            if c.s == 1:
                return self._decrypt_crt(c.value), "crt"
            return self._decrypt_crt_level(c.value, c.s), "crt"
        mod_cipher = self.public_key.ciphertext_modulus(c.s)
        u = pow(c.value, self.lam, mod_cipher)
        m_lam = self._extract(u, c.s)
        return m_lam * self._lam_inv(c.s) % self.public_key.n_pow(c.s), "generic"

    def _crt_params(self) -> tuple[int, int, int, int, int]:
        """(p^2, q^2, hp, hq, q^-1 mod p) for the s = 1 fast path.

        ``hp = L_p((1+N)^{p-1} mod p^2)^-1 mod p`` folds the generator term
        and the lambda inverse into one precomputed constant per prime.
        """
        if self._crt is None:
            p, q, n = self.p, self.q, self.public_key.n
            p2 = p * p
            q2 = q * q
            hp = invmod((pow(1 + n, p - 1, p2) - 1) // p % p, p)
            hq = invmod((pow(1 + n, q - 1, q2) - 1) // q % q, q)
            self._crt = (p2, q2, hp, hq, invmod(q, p))
        return self._crt

    def _prime_pow(self, value: int, which: int, modulus: int) -> int:
        """``value^{p-1}`` (which=0) or ``value^{q-1}`` (which=1) mod ``modulus``.

        Windowed through the cached fixed-exponent plans when the fast
        paths are on; plain ``pow`` otherwise.  Value-identical either way.
        """
        if fastexp.enabled():
            return self.prime_plans()[which].powmod(value, modulus)
        exponent = (self.p if which == 0 else self.q) - 1
        return pow(value, exponent, modulus)

    def _decrypt_crt(self, value: int) -> int:
        """CRT decryption of an eps_1 ciphertext value."""
        p, q = self.p, self.q
        p2, q2, hp, hq, q_inv = self._crt_params()
        mp = (self._prime_pow(value % p2, 0, p2) - 1) // p % p * hp % p
        mq = (self._prime_pow(value % q2, 1, q2) - 1) // q % q * hq % q
        # Garner recombination: m = mq + q * ((mp - mq) * q^-1 mod p).
        return (mq + q * ((mp - mq) * q_inv % p)) % self.public_key.n

    def _crt_params_level(self, s: int) -> tuple[int, int, int, int, int]:
        """(p^{s+1}, q^{s+1}, hp, hq, (q^s)^-1 mod p^s) for level ``s``.

        ``hp`` inverts the combined generator/lambda term per prime:
        ``c^{p-1} mod p^{s+1}`` equals ``(1+N)^{m(p-1)}`` (the nonce
        component has order dividing ``p^s (p-1)`` and is annihilated by
        the ``q^s`` factor hidden in ``N^s``), and its discrete log to
        base ``1 + p`` is ``m * Dp mod p^s`` with the invertible constant
        ``Dp = dlog_{1+p}((1+N)^{p-1})``.
        """
        params = self._crt_s.get(s)
        if params is None:
            p, q, n = self.p, self.q, self.public_key.n
            ps1, qs1 = p ** (s + 1), q ** (s + 1)
            ps, qs = p**s, q**s
            hp = invmod(_extract_dlog(pow(1 + n, p - 1, ps1), p, s), ps)
            hq = invmod(_extract_dlog(pow(1 + n, q - 1, qs1), q, s), qs)
            params = (ps1, qs1, hp, hq, invmod(qs, ps))
            self._crt_s[s] = params
        return params

    def _decrypt_crt_level(self, value: int, s: int) -> int:
        """CRT decryption of a level-``s`` ciphertext value (any ``s >= 1``)."""
        p, q = self.p, self.q
        ps1, qs1, hp, hq, qs_inv = self._crt_params_level(s)
        ps, qs = p**s, q**s
        mp = _extract_dlog(self._prime_pow(value % ps1, 0, ps1), p, s) * hp % ps
        mq = _extract_dlog(self._prime_pow(value % qs1, 1, qs1), q, s) * hq % qs
        # Garner recombination modulo N^s = p^s * q^s.
        return mq + qs * ((mp - mq) * qs_inv % ps)

    def decrypt_nested(self, c: Ciphertext) -> int:
        """Decrypt a doubly encrypted value: ``Dec_1(Dec_2(c))``.

        PPGNN-OPT's second selection phase produces an eps_2 ciphertext whose
        plaintext is itself an eps_1 ciphertext value (Section 6); this
        helper performs the two decryptions the coordinator runs.
        """
        return self.decrypt_nested_with_path(c)[0]

    def decrypt_nested_with_path(
        self, c: Ciphertext
    ) -> tuple[int, tuple[str, str]]:
        """:meth:`decrypt_nested` plus the (outer, inner) path tags."""
        if c.s != 2:
            raise CryptoError("nested decryption expects an eps_2 ciphertext")
        inner_value, outer_path = self.decrypt_with_path(c)
        inner = Ciphertext(value=inner_value, s=1, public_key=self.public_key)
        plaintext, inner_path = self.decrypt_with_path(inner)
        return plaintext, (outer_path, inner_path)


class KeyPair(NamedTuple):
    """The (secret, public) pair returned by ``Gen`` — the paper's (sk, pk)."""

    secret_key: PaillierPrivateKey
    public_key: PaillierPublicKey


@lru_cache(maxsize=8)
def _cached_keypair(keysize: int, seed: int) -> KeyPair:
    rng = random.Random(seed)
    p, q = generate_distinct_primes(keysize // 2, rng)
    public = PaillierPublicKey(p * q)
    return KeyPair(PaillierPrivateKey(public, p, q), public)


def generate_keypair(keysize: int = 1024, seed: int | None = None) -> KeyPair:
    """The ``Gen`` algorithm: produce ``(sk, pk)`` for a given key size.

    ``keysize`` is the bit length of the modulus N (the paper's default is
    1024).  Passing a ``seed`` makes key generation deterministic *and
    cached*, which benchmarks and tests use to amortize prime generation;
    production use should leave ``seed`` as None.
    """
    if keysize < 16 or keysize % 2:
        raise CryptoError("keysize must be an even number of bits >= 16")
    if seed is not None:
        return _cached_keypair(keysize, seed)
    rng = random.Random()
    p, q = generate_distinct_primes(keysize // 2, rng)
    public = PaillierPublicKey(p * q)
    return KeyPair(PaillierPrivateKey(public, p, q), public)
