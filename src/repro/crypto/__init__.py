"""Cryptographic substrate: generalized Paillier (Damgård–Jurik) cryptosystem.

The paper's private selection (Theorem 3.1) and its two-phase optimization
(Section 6) are built on the generalized Paillier cryptosystem eps_s of
Damgard and Jurik [10].  The original evaluation used GMP + libhcs; this
package is a from-scratch pure-Python implementation with the same
interface surface:

- :mod:`~repro.crypto.primes` — Miller–Rabin primality and prime generation,
- :mod:`~repro.crypto.modmath` — egcd / modular inverse / CRT / lcm,
- :mod:`~repro.crypto.paillier` — ``Gen`` / ``Enc`` / ``Dec`` for any s >= 1,
- :mod:`~repro.crypto.homomorphic` — the homomorphic operators of Eqns (2)-(4)
  and the matrix selection of Theorem 3.1, including the nested two-phase
  selection used by PPGNN-OPT.
"""

from repro.crypto.homomorphic import (
    hom_add,
    hom_dot,
    hom_scalar_mul,
    matrix_select,
    nested_select,
)
from repro.crypto.paillier import (
    Ciphertext,
    KeyPair,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
)

__all__ = [
    "Ciphertext",
    "KeyPair",
    "PaillierPublicKey",
    "PaillierPrivateKey",
    "generate_keypair",
    "hom_add",
    "hom_scalar_mul",
    "hom_dot",
    "matrix_select",
    "nested_select",
]
