"""Modular-arithmetic helpers used by the Paillier implementation.

These wrap Python's arbitrary-precision integers; GMP in the paper's C++
implementation plays the same role.
"""

from __future__ import annotations

import math

from repro.errors import CryptoError


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: returns ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    return old_r, old_x, old_y


def invmod(a: int, n: int) -> int:
    """Modular inverse of ``a`` modulo ``n``.

    Raises :class:`CryptoError` when the inverse does not exist; for Paillier
    moduli a non-invertible element would reveal a factor of N, so this is
    genuinely exceptional.
    """
    g, x, _ = egcd(a % n, n)
    if g != 1:
        raise CryptoError(f"{a} is not invertible modulo {n} (gcd={g})")
    return x % n


def lcm(a: int, b: int) -> int:
    """Least common multiple."""
    return abs(a * b) // math.gcd(a, b)


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> int:
    """Solve ``x = r1 (mod m1)`` and ``x = r2 (mod m2)`` for coprime moduli.

    Returns the unique solution in ``[0, m1*m2)``.
    """
    g, p, _ = egcd(m1, m2)
    if g != 1:
        raise CryptoError("CRT requires coprime moduli")
    diff = (r2 - r1) % m2
    return (r1 + m1 * ((diff * p) % m2)) % (m1 * m2)


def factorial_inverse_table(max_k: int, modulus: int) -> list[int]:
    """Inverses of ``k!`` modulo ``modulus`` for ``k`` in ``[0, max_k]``.

    Used by the Damgård–Jurik plaintext-extraction recursion, which divides
    by small factorials modulo ``N**j``.  All ``k <= max_k`` must be coprime
    with the modulus — true whenever ``max_k`` is far below N's prime factors.
    """
    table = [1] * (max_k + 1)
    fact = 1
    for k in range(1, max_k + 1):
        fact *= k
        table[k] = invmod(fact, modulus)
    return table
