"""Homomorphic operators over Damgård–Jurik ciphertexts.

Implements the paper's Eqns (2)-(4) and Theorem 3.1:

- :func:`hom_add`         — Eqn (2), ciphertext * ciphertext = Enc(x1 + x2),
- :func:`hom_scalar_mul`  — Eqn (3), ciphertext ^ x1 = Enc(x1 * x2),
- :func:`hom_dot`         — Eqn (4), plaintext-vector (.) encrypted-vector,
- :func:`matrix_select`   — Theorem 3.1, the private selection A (x) [v],
- :func:`nested_select`   — Section 6, the second-phase selection that treats
  eps_1 ciphertexts as eps_2 plaintexts.

An optional :class:`OpCounter` receives one tick per primitive ciphertext
operation so protocols can report exact operation counts alongside wall
time (used by tests for deterministic cost assertions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.crypto import fastexp
from repro.crypto.paillier import Ciphertext, PaillierPublicKey
from repro.errors import CryptoError


@dataclass
class OpCounter:
    """Tallies of homomorphic primitive operations."""

    additions: int = 0
    scalar_muls: int = 0
    encryptions: int = 0
    decryptions: int = 0

    def merge(self, other: "OpCounter") -> None:
        """Accumulate another counter into this one."""
        self.additions += other.additions
        self.scalar_muls += other.scalar_muls
        self.encryptions += other.encryptions
        self.decryptions += other.decryptions

    @property
    def total(self) -> int:
        return self.additions + self.scalar_muls + self.encryptions + self.decryptions


def _check_compatible(a: Ciphertext, b: Ciphertext) -> None:
    if a.public_key != b.public_key:
        raise CryptoError("ciphertexts under different public keys")
    if a.s != b.s:
        raise CryptoError(f"ciphertext levels differ: s={a.s} vs s={b.s}")


def hom_add(a: Ciphertext, b: Ciphertext, counter: OpCounter | None = None) -> Ciphertext:
    """Eqn (2): Enc(x1) (+) Enc(x2) = Enc(x1 + x2) via ciphertext product."""
    _check_compatible(a, b)
    if counter is not None:
        counter.additions += 1
    mod = a.public_key.ciphertext_modulus(a.s)
    return Ciphertext(a.value * b.value % mod, a.s, a.public_key)


def hom_scalar_mul(scalar: int, c: Ciphertext, counter: OpCounter | None = None) -> Ciphertext:
    """Eqn (3): x1 (x) Enc(x2) = Enc(x1 * x2) via ciphertext exponentiation.

    The scalar is reduced into the plaintext space ``Z_{N^s}`` first, so
    negative scalars work (they wrap around, exactly as plaintexts do).
    """
    if counter is not None:
        counter.scalar_muls += 1
    pk = c.public_key
    exponent = scalar % pk.plaintext_modulus(c.s)
    mod = pk.ciphertext_modulus(c.s)
    return Ciphertext(pow(c.value, exponent, mod), c.s, pk)


def hom_dot(
    scalars: Sequence[int],
    ciphertexts: Sequence[Ciphertext],
    counter: OpCounter | None = None,
    ledger: "fastexp.MulLedger | None" = None,
) -> Ciphertext:
    """Eqn (4): plaintext vector x (.) encrypted vector [v] = Enc(x . v).

    Scalars equal to zero are skipped: ``Enc(v)^0 = 1`` contributes nothing,
    and the answer matrix is mostly zero padding, so this is a significant
    constant-factor win that does not change the result.

    With the fast paths on, two or more surviving terms evaluate through
    one interleaved multi-exponentiation (:func:`~repro.crypto.fastexp.
    multi_pow`) — one shared squaring chain instead of one per term —
    producing the identical ciphertext value.  ``counter`` keeps the
    *logical* per-term tallies either way (the cost model depends on
    them); ``ledger``, when given, receives the exact big-integer
    multiplication count of whichever evaluation ran.
    """
    if len(scalars) != len(ciphertexts):
        raise CryptoError(
            f"dot product length mismatch: {len(scalars)} vs {len(ciphertexts)}"
        )
    if not ciphertexts:
        raise CryptoError("dot product over empty vectors")
    pk = ciphertexts[0].public_key
    s = ciphertexts[0].s
    mod = pk.ciphertext_modulus(s)
    plain_mod = pk.plaintext_modulus(s)
    terms: list[tuple[int, int]] = []
    for x, c in zip(scalars, ciphertexts, strict=True):
        if c.public_key != pk or c.s != s:
            raise CryptoError("mixed keys or levels in dot product")
        x_red = x % plain_mod
        if x_red == 0:
            continue
        if counter is not None:
            counter.scalar_muls += 1
            counter.additions += 1
        terms.append((c.value, x_red))
    if fastexp.enabled() and len(terms) >= 2:
        acc = fastexp.multi_pow(terms, mod, ledger=ledger)
    else:
        acc = 1
        for value, exponent in terms:
            acc = acc * pow(value, exponent, mod) % mod
        if ledger is not None and terms:
            ledger.add(
                sum(fastexp.binary_pow_cost(e) for _, e in terms)
                + len(terms)
                - 1
            )
    return Ciphertext(acc, s, pk)


def matrix_select(
    matrix: Sequence[Sequence[int]],
    indicator: Sequence[Ciphertext],
    counter: OpCounter | None = None,
) -> list[Ciphertext]:
    """Theorem 3.1: ``A (x) [v]`` — privately select one column of A.

    ``matrix`` is row-major with shape (m, len(indicator)); when ``[v]``
    encrypts the standard basis vector e_i the result is the element-wise
    encryption of column i.
    """
    width = len(indicator)
    for row in matrix:
        if len(row) != width:
            raise CryptoError("matrix width does not match indicator length")
    return [hom_dot(row, indicator, counter) for row in matrix]


def nested_select(
    blocks: Sequence[Sequence[Ciphertext]],
    outer_indicator: Sequence[Ciphertext],
    counter: OpCounter | None = None,
) -> list[Ciphertext]:
    """Section 6 phase two: select one block of eps_1 results under eps_2.

    ``blocks[b]`` holds the m eps_1 ciphertexts produced by the first-phase
    selection on sub-matrix b; ``outer_indicator`` is the element-wise eps_2
    encryption of a basis vector over blocks.  Each eps_1 ciphertext *value*
    (an integer below N^2) is treated as an eps_2 plaintext, giving m eps_2
    ciphertexts whose plaintexts are the selected block's eps_1 ciphertexts.
    """
    if len(blocks) != len(outer_indicator):
        raise CryptoError("block count does not match outer indicator length")
    if not blocks:
        raise CryptoError("nested selection over zero blocks")
    m = len(blocks[0])
    for block in blocks:
        if len(block) != m:
            raise CryptoError("ragged phase-one blocks")
    for c in outer_indicator:
        if c.s != 2:
            raise CryptoError("outer indicator must be encrypted at level s=2")
    result = []
    for row in range(m):
        scalars = [block[row].value for block in blocks]
        result.append(hom_dot(scalars, outer_indicator, counter))
    return result


def encrypt_indicator(
    pk: PaillierPublicKey,
    length: int,
    hot_index: int,
    s: int = 1,
    rng=None,
    counter: OpCounter | None = None,
) -> list[Ciphertext]:
    """Element-wise encryption of the basis vector e_{hot_index} of ``length``.

    The workhorse of query generation (Algorithm 1 line 10 and the two small
    vectors of PPGNN-OPT).
    """
    if not 0 <= hot_index < length:
        raise CryptoError(f"hot index {hot_index} out of range [0, {length})")
    if counter is not None:
        counter.encryptions += length
    return [
        pk.encrypt(1 if i == hot_index else 0, s=s, rng=rng) for i in range(length)
    ]
