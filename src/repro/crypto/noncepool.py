"""Offline precomputation of encryption nonces.

Paillier encryption costs one cheap ``(1+N)^m`` evaluation plus one
*expensive* ``r^{N^s} mod N^{s+1}`` exponentiation that does not depend on
the plaintext.  A mobile coordinator can therefore precompute obfuscation
factors while idle/charging and spend them at query time — turning the
dominant user-side cost of query generation (the delta'-long indicator
encryption, Figure 6b) into an offline expense.

:class:`NoncePool` holds precomputed factors per encryption level;
:func:`encrypt_with_pool` consumes one per ciphertext and falls back to
online computation when the pool runs dry (correctness never depends on
pool state).  The crypto ablation test verifies ciphertext compatibility
and measures the speedup.
"""

from __future__ import annotations

import random
from collections import defaultdict

from repro.crypto.paillier import Ciphertext, PaillierPublicKey
from repro.errors import ConfigurationError, CryptoError


class NoncePool:
    """A stock of precomputed obfuscation factors ``r^{N^s} mod N^{s+1}``."""

    def __init__(self, public_key: PaillierPublicKey) -> None:
        self.public_key = public_key
        self._factors: dict[int, list[int]] = defaultdict(list)

    def available(self, s: int = 1) -> int:
        """How many factors remain at level ``s``."""
        return len(self._factors[s])

    def refill(self, count: int, s: int = 1, rng: random.Random | None = None) -> None:
        """Precompute ``count`` fresh factors at level ``s`` (offline work)."""
        if count < 0:
            raise ConfigurationError("refill count must be non-negative")
        rng = rng or random.Random()
        pk = self.public_key
        mod = pk.ciphertext_modulus(s)
        exponent = pk.n_pow(s)
        bucket = self._factors[s]
        for _ in range(count):
            r = pk.random_unit(rng)
            bucket.append(pow(r, exponent, mod))

    def take(self, s: int = 1) -> int | None:
        """Pop one factor, or None when the pool is dry."""
        bucket = self._factors[s]
        return bucket.pop() if bucket else None


def encrypt_with_pool(
    pool: NoncePool,
    plaintext: int,
    s: int = 1,
    rng: random.Random | None = None,
    public_key: PaillierPublicKey | None = None,
) -> Ciphertext:
    """Encrypt using a precomputed obfuscation factor when available.

    Ciphertexts are indistinguishable from :meth:`PaillierPublicKey.encrypt`
    output (same distribution); when the pool is dry the factor is computed
    online, so callers never need to check pool levels.

    ``public_key`` states the key the caller intends to encrypt under.
    A pool refilled under a *different* key would silently produce
    undecryptable ciphertexts (the factor ``r^{N^s}`` is key-specific),
    so a mismatch raises :class:`~repro.errors.CryptoError` instead.
    """
    pk = pool.public_key
    if public_key is not None and public_key != pk:
        raise CryptoError(
            "nonce pool was refilled under a different public key than the "
            "one this encryption targets"
        )
    mod_plain = pk.plaintext_modulus(s)
    if not 0 <= plaintext < mod_plain:
        raise CryptoError(f"plaintext out of range for s={s}")
    factor = pool.take(s)
    if factor is None:
        return pk.encrypt(plaintext, s=s, rng=rng)
    mod = pk.ciphertext_modulus(s)
    value = pk.g_pow(plaintext, s) * factor % mod
    return Ciphertext(value=value, s=s, public_key=pk)


def pooled_indicator(
    pool: NoncePool,
    length: int,
    hot_index: int,
    s: int = 1,
    rng: random.Random | None = None,
    public_key: PaillierPublicKey | None = None,
) -> list[Ciphertext]:
    """The basis-vector indicator of ``encrypt_indicator``, pool-backed.

    ``public_key`` pins the expected group key — see
    :func:`encrypt_with_pool`.
    """
    if not 0 <= hot_index < length:
        raise CryptoError(f"hot index {hot_index} out of range [0, {length})")
    return [
        encrypt_with_pool(
            pool, 1 if i == hot_index else 0, s=s, rng=rng, public_key=public_key
        )
        for i in range(length)
    ]
