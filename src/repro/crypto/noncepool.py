"""Offline precomputation of encryption nonces.

Paillier encryption costs one cheap ``(1+N)^m`` evaluation plus one
*expensive* ``r^{N^s} mod N^{s+1}`` exponentiation that does not depend on
the plaintext.  A mobile coordinator can therefore precompute obfuscation
factors while idle/charging and spend them at query time — turning the
dominant user-side cost of query generation (the delta'-long indicator
encryption, Figure 6b) into an offline expense.

:class:`NoncePool` holds precomputed factors per encryption level;
:func:`encrypt_with_pool` consumes one per ciphertext and falls back to
online computation when the pool runs dry (correctness never depends on
pool state).  The crypto ablation test verifies ciphertext compatibility
and measures the speedup.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass

from repro.crypto import fastexp
from repro.crypto.paillier import Ciphertext, PaillierPrivateKey, PaillierPublicKey
from repro.encoding.packing import pack_uniform, unpack_uniform
from repro.errors import ConfigurationError, CryptoError


@dataclass
class PoolStats:
    """Hit/miss accounting of one pool's lifetime.

    ``pooled`` counts takes served from stock (the offline-work wins),
    ``dry`` counts takes that found the pool empty (the caller fell back
    to an online exponentiation), ``precomputed`` counts factors ever
    produced by :meth:`NoncePool.refill`.  The ``fastexp`` trio tracks
    which exponentiation kernel the refills ran: ``windowed`` factors
    went through the fixed-exponent window program, ``crt_split``
    through the secret-key half-width path, and ``fast_muls`` is the
    big-integer multiplication count refill exponentiations spent —
    exact for the fast kernels, the square-and-multiply estimate for
    builtin ``pow`` (the ``crypto.fastexp.*`` metrics).
    """

    precomputed: int = 0
    refills: int = 0
    pooled: int = 0
    dry: int = 0
    windowed: int = 0
    crt_split: int = 0
    fast_muls: int = 0

    @property
    def hit_rate(self) -> float:
        takes = self.pooled + self.dry
        return self.pooled / takes if takes else 0.0

    def merge(self, other: "PoolStats") -> None:
        """Accumulate another pool's counters into this one."""
        self.precomputed += other.precomputed
        self.refills += other.refills
        self.pooled += other.pooled
        self.dry += other.dry
        self.windowed += other.windowed
        self.crt_split += other.crt_split
        self.fast_muls += other.fast_muls


class NoncePool:
    """A stock of precomputed obfuscation factors ``r^{N^s} mod N^{s+1}``.

    With a ``secret_key`` the pool belongs to the key owner (the paper's
    coordinator precomputes its *own* nonces), so refills run the
    CRT-split half-width path; without one they use the public windowed
    fixed-exponent program.  Both produce the exact values builtin
    ``pow`` would, so pool contents never depend on which kernel ran.
    """

    def __init__(
        self,
        public_key: PaillierPublicKey,
        secret_key: PaillierPrivateKey | None = None,
    ) -> None:
        if secret_key is not None and secret_key.public_key != public_key:
            raise CryptoError("secret key does not match the pool's public key")
        self.public_key = public_key
        self.secret_key = secret_key
        self._factors: dict[int, list[int]] = defaultdict(list)
        self.stats = PoolStats()

    def attach_secret_key(self, secret_key: PaillierPrivateKey) -> None:
        """Upgrade refills to the CRT-split path (key owner's pool)."""
        if secret_key.public_key != self.public_key:
            raise CryptoError("secret key does not match the pool's public key")
        self.secret_key = secret_key

    def available(self, s: int = 1) -> int:
        """How many factors remain at level ``s``."""
        return len(self._factors[s])

    def refill(self, count: int, s: int = 1, rng: random.Random | None = None) -> None:
        """Precompute ``count`` fresh factors at level ``s`` (offline work)."""
        if count < 0:
            raise ConfigurationError("refill count must be non-negative")
        rng = rng or random.Random()
        pk = self.public_key
        mod = pk.ciphertext_modulus(s)
        exponent = pk.n_pow(s)
        bucket = self._factors[s]
        fast = fastexp.enabled()
        ledger = fastexp.MulLedger()
        plan = pk.nonce_plan(s) if fast and self.secret_key is None else None
        for _ in range(count):
            r = pk.random_unit(rng)
            if not fast:
                bucket.append(pow(r, exponent, mod))
                ledger.add(fastexp.binary_pow_cost(exponent))
            elif self.secret_key is not None:
                bucket.append(self.secret_key.crt_pow(r, exponent, s, ledger))
                self.stats.crt_split += 1
            else:
                bucket.append(plan.powmod(r, mod, ledger))
                self.stats.windowed += 1
        self.stats.fast_muls += ledger.muls
        self.stats.precomputed += count
        self.stats.refills += 1

    def take(self, s: int = 1) -> int | None:
        """Pop one factor, or None when the pool is dry.

        A popped factor is *consumed*: it leaves the pool and can never be
        handed out again, so two ciphertexts can only share an obfuscation
        factor if ``refill`` drew the same unit twice (probability ~2^-keysize).
        """
        bucket = self._factors[s]
        if bucket:
            self.stats.pooled += 1
            return bucket.pop()
        self.stats.dry += 1
        return None


class NoncePoolRegistry:
    """Per-public-key nonce pools shared by every session under that key.

    The serving engine owns one registry; sessions whose groups share a key
    pair (the common benchmark configuration) draw from one pool, so
    offline precomputation is amortized across the whole fleet.  Refill
    randomness is derived deterministically from the registry seed and a
    refill counter, keeping serving runs replayable.
    """

    def __init__(self, seed: int = 0, chunk: int = 64) -> None:
        if chunk < 1:
            raise ConfigurationError("refill chunk must be positive")
        self.seed = seed
        self.chunk = chunk
        self._pools: dict[PaillierPublicKey, NoncePool] = {}
        self._refills = 0

    def pool_for(
        self,
        public_key: PaillierPublicKey,
        secret_key: PaillierPrivateKey | None = None,
    ) -> NoncePool:
        """The shared pool of one public key (created on first use).

        Passing the matching ``secret_key`` marks the pool as key-owned,
        switching refills to the CRT-split path (see :class:`NoncePool`).
        """
        pool = self._pools.get(public_key)
        if pool is None:
            pool = NoncePool(public_key, secret_key)
            self._pools[public_key] = pool
        elif secret_key is not None and pool.secret_key is None:
            pool.attach_secret_key(secret_key)
        return pool

    def ensure(self, public_key: PaillierPublicKey, count: int, s: int = 1) -> NoncePool:
        """Top the key's pool up to ``count`` factors at level ``s``.

        Refills happen in chunks of at least ``self.chunk`` — the batching
        knob: one big refill amortizes better than many small ones when
        several sessions drain the same pool.
        """
        pool = self.pool_for(public_key)
        deficit = count - pool.available(s)
        if deficit > 0:
            self._refills += 1
            rng = random.Random(self.seed * 1_000_003 + self._refills * 97 + s)
            pool.refill(max(deficit, self.chunk), s=s, rng=rng)
        return pool

    @property
    def stats(self) -> PoolStats:
        """Counters aggregated over every pool in the registry."""
        total = PoolStats()
        for pool in self._pools.values():
            total.merge(pool.stats)
        return total


def encrypt_with_pool(
    pool: NoncePool,
    plaintext: int,
    s: int = 1,
    rng: random.Random | None = None,
    public_key: PaillierPublicKey | None = None,
) -> Ciphertext:
    """Encrypt using a precomputed obfuscation factor when available.

    Ciphertexts are indistinguishable from :meth:`PaillierPublicKey.encrypt`
    output (same distribution); when the pool is dry the factor is computed
    online, so callers never need to check pool levels.

    ``public_key`` states the key the caller intends to encrypt under.
    A pool refilled under a *different* key would silently produce
    undecryptable ciphertexts (the factor ``r^{N^s}`` is key-specific),
    so a mismatch raises :class:`~repro.errors.CryptoError` instead.
    """
    pk = pool.public_key
    if public_key is not None and public_key != pk:
        raise CryptoError(
            "nonce pool was refilled under a different public key than the "
            "one this encryption targets"
        )
    mod_plain = pk.plaintext_modulus(s)
    if not 0 <= plaintext < mod_plain:
        raise CryptoError(f"plaintext out of range for s={s}")
    factor = pool.take(s)
    if factor is None:
        return pk.encrypt(plaintext, s=s, rng=rng)
    # Routed through the key method so profiled keys charge the pooled
    # cost (binomial expansion + combine) instead of a full encryption.
    return pk.encrypt_with_factor(plaintext, factor, s=s)


def packed_capacity(public_key: PaillierPublicKey, field_bits: int, s: int = 1) -> int:
    """How many ``field_bits``-wide fields fit in one level-``s`` plaintext.

    One bit is reserved below ``N^s`` (whose top bit is not guaranteed),
    mirroring :class:`~repro.encoding.answers.AnswerCodec`'s
    ``keysize - 1`` chunking.
    """
    if field_bits < 1:
        raise ConfigurationError("field width must be positive")
    return max((public_key.key_bits * s - 1) // field_bits, 0)


def encrypt_packed(
    pool: NoncePool,
    values: list[int],
    field_bits: int,
    s: int = 1,
    rng: random.Random | None = None,
    public_key: PaillierPublicKey | None = None,
) -> Ciphertext:
    """Encrypt many small fields as one pooled ciphertext.

    Packs ``values`` with :func:`~repro.encoding.packing.pack_uniform`
    and spends a *single* obfuscation factor, so a batch of serving-side
    payload fields costs one encryption instead of ``len(values)``.
    """
    capacity = packed_capacity(pool.public_key, field_bits, s)
    if len(values) > capacity:
        raise CryptoError(
            f"{len(values)} fields of {field_bits} bits exceed the "
            f"level-{s} plaintext capacity of {capacity} fields"
        )
    plaintext = pack_uniform(values, field_bits)
    return encrypt_with_pool(pool, plaintext, s=s, rng=rng, public_key=public_key)


def decrypt_packed(
    secret_key: PaillierPrivateKey,
    c: Ciphertext,
    field_bits: int,
    count: int,
) -> list[int]:
    """Inverse of :func:`encrypt_packed` for ``count`` fields."""
    return unpack_uniform(secret_key.decrypt(c), field_bits, count)


def pooled_indicator(
    pool: NoncePool,
    length: int,
    hot_index: int,
    s: int = 1,
    rng: random.Random | None = None,
    public_key: PaillierPublicKey | None = None,
) -> list[Ciphertext]:
    """The basis-vector indicator of ``encrypt_indicator``, pool-backed.

    ``public_key`` pins the expected group key — see
    :func:`encrypt_with_pool`.
    """
    if not 0 <= hot_index < length:
        raise CryptoError(f"hot index {hot_index} out of range [0, {length})")
    return [
        encrypt_with_pool(
            pool, 1 if i == hot_index else 0, s=s, rng=rng, public_key=public_key
        )
        for i in range(length)
    ]
