"""Command-line interface.

Installed as the ``repro`` console script:

- ``repro info``    — library, parameter, and paper metadata,
- ``repro query``   — run one privacy-preserving (group) kNN query with
  chosen privacy parameters and print the answer plus the cost report,
- ``repro attack``  — run the full-collusion inequality attack against a
  sanitized and an unsanitized answer, side by side,
- ``repro solve``   — solve the partition parameters for an (n, d, delta)
  triple (Eqns 7-10) and print the layout,
- ``repro serve-bench`` — run a seeded multi-session workload through the
  :mod:`repro.serve` engine and print (optionally record) the serving
  report,
- ``repro trace`` — render a span tree: either from a recorded JSONL
  trace (``--input``) or by running one traced query, flagging the
  slowest path and printing the metric counters it published.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro import __version__
from repro.attacks.inequality import inequality_attack
from repro.bench.harness import format_bytes, format_seconds
from repro.core.config import PPGNNConfig
from repro.core.group import random_group, run_ppgnn
from repro.core.lsp import LSPServer
from repro.core.naive import run_naive
from repro.core.opt import run_ppgnn_opt
from repro.core.single import run_single_user
from repro.datasets.sequoia import load_sequoia
from repro.errors import ReproError
from repro.partition.solver import solve_partition

_PROTOCOLS = {
    "ppgnn": run_ppgnn,
    "opt": run_ppgnn_opt,
    "naive": run_naive,
}


def _add_common_query_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pois", type=int, default=10_000, help="database size")
    parser.add_argument("--n", type=int, default=8, help="group size")
    parser.add_argument("--d", type=int, default=25, help="Privacy I parameter")
    parser.add_argument("--delta", type=int, default=100, help="Privacy II parameter")
    parser.add_argument("--k", type=int, default=8, help="POIs to retrieve")
    parser.add_argument(
        "--theta0", type=float, default=0.05, help="Privacy IV parameter"
    )
    parser.add_argument("--keysize", type=int, default=256, help="Paillier bits")
    parser.add_argument("--seed", type=int, default=1, help="randomness seed")
    parser.add_argument(
        "--aggregate", default="sum", choices=["sum", "max", "min"], help="F"
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for the `repro` console script."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privacy Preserving Group Nearest Neighbor Search (EDBT 2018)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show library and paper metadata")

    query = sub.add_parser("query", help="run one privacy-preserving query")
    _add_common_query_args(query)
    query.add_argument(
        "--protocol",
        default="ppgnn",
        choices=sorted(_PROTOCOLS) + ["nas"],
        help="protocol variant",
    )

    attack = sub.add_parser("attack", help="demonstrate the collusion attack")
    _add_common_query_args(attack)
    attack.add_argument(
        "--samples", type=int, default=20_000, help="attack Monte-Carlo samples"
    )

    solve = sub.add_parser("solve", help="solve the partition parameters")
    solve.add_argument("--n", type=int, required=True)
    solve.add_argument("--d", type=int, required=True)
    solve.add_argument("--delta", type=int, required=True)

    serve = sub.add_parser(
        "serve-bench", help="run a serving workload and report throughput"
    )
    serve.add_argument("--pois", type=int, default=2_000, help="database size")
    serve.add_argument("--queries", type=int, default=50, help="jobs to serve")
    serve.add_argument("--groups", type=int, default=6, help="distinct query groups")
    serve.add_argument("--d", type=int, default=4, help="Privacy I parameter")
    serve.add_argument("--delta", type=int, default=8, help="Privacy II parameter")
    serve.add_argument("--k", type=int, default=4, help="POIs to retrieve")
    serve.add_argument("--keysize", type=int, default=256, help="Paillier bits")
    serve.add_argument("--seed", type=int, default=1, help="workload seed")
    serve.add_argument("--workers", type=int, default=2, help="serving workers")
    serve.add_argument(
        "--executor", default="serial", choices=["serial", "process"],
        help="execution backend",
    )
    serve.add_argument(
        "--policy", default="fifo", choices=["fifo", "shortest-cost", "fair-share"],
        help="scheduling policy",
    )
    serve.add_argument("--rate", type=float, default=8.0, help="arrival rate (qps)")
    serve.add_argument(
        "--repeat-fraction", type=float, default=0.3,
        help="probability a job re-issues an earlier query verbatim",
    )
    serve.add_argument(
        "--fault-rate", type=float, default=0.0,
        help="uniform drop/dup/reorder/corrupt rate (0 disables faults)",
    )
    serve.add_argument(
        "--record", metavar="DIR", default=None,
        help="write BENCH_serve.json into this directory",
    )
    serve.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    serve.add_argument(
        "--obs", action="store_true",
        help="collect traces and metrics; embeds them in the report",
    )
    serve.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write the merged span trace as JSONL (implies --obs)",
    )

    trace = sub.add_parser(
        "trace", help="render a span tree from a trace file or a live query"
    )
    _add_common_query_args(trace)
    trace.add_argument(
        "--protocol",
        default="ppgnn",
        choices=sorted(_PROTOCOLS),
        help="protocol variant to trace (live mode)",
    )
    trace.add_argument(
        "--input", metavar="FILE", default=None,
        help="render this JSONL trace instead of running a query",
    )
    trace.add_argument(
        "--out", metavar="FILE", default=None,
        help="also write the captured trace as JSONL (live mode)",
    )
    return parser


def _build_config(args: argparse.Namespace, sanitize: bool = True) -> PPGNNConfig:
    return PPGNNConfig(
        d=args.d,
        delta=args.delta,
        k=args.k,
        theta0=args.theta0,
        sanitize=sanitize,
        keysize=args.keysize,
        aggregate_name=args.aggregate,
        key_seed=args.seed,
    )


def _cmd_info(_: argparse.Namespace) -> int:
    print(f"repro {__version__}")
    print("Reproduction of: Privacy Preserving Group Nearest Neighbor Search")
    print("                 (Wu, Wang, Zhang, Lin, Chen — EDBT 2018)")
    print("Protocols: ppgnn, ppgnn-opt, naive, ppgnn-nas, single-user")
    print("Baselines: apnn, ippf, glp")
    print("Defaults (paper Table 3): d=25 delta=100 k=8 n=8 theta0=0.05")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    sanitize = args.protocol != "nas" and args.n > 1
    config = _build_config(args, sanitize=sanitize)
    runner = _PROTOCOLS.get(args.protocol, run_ppgnn)
    lsp = LSPServer(
        load_sequoia(args.pois), aggregate_name=args.aggregate, seed=args.seed
    )
    print(f"database: {args.pois} POIs; protocol: {args.protocol}; n={args.n}")
    if args.n == 1:
        location = lsp.space.sample_point(np.random.default_rng(args.seed))
        result = run_single_user(lsp, location, config, seed=args.seed)
    else:
        group = random_group(args.n, lsp.space, np.random.default_rng(args.seed))
        result = runner(lsp, group, config, seed=args.seed)
    print(f"answer ({len(result.answers)} of k={args.k} POIs):")
    for rank, answer in enumerate(result.answers, start=1):
        print(f"  {rank}. {lsp.engine.poi_by_id(answer.poi_id)}")
    report = result.report
    print(f"candidate queries : {result.delta_prime}")
    print(f"communication     : {format_bytes(report.total_comm_bytes)}")
    print(f"user computation  : {format_seconds(report.user_cost_seconds)}")
    print(f"LSP computation   : {format_seconds(report.lsp_cost_seconds)}")
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    lsp = LSPServer(
        load_sequoia(args.pois), aggregate_name=args.aggregate, seed=args.seed
    )
    group = random_group(max(args.n, 2), lsp.space, np.random.default_rng(args.seed))
    for label, sanitize in (("without sanitation", False), ("with sanitation", True)):
        config = _build_config(args, sanitize=sanitize)
        result = run_ppgnn(lsp, group, config, seed=args.seed)
        outcome = inequality_attack(
            [a.location for a in result.answers],
            group[1:],
            lsp.space,
            lsp.aggregate,
            n_samples=args.samples,
            rng=np.random.default_rng(args.seed),
            true_target=group[0],
        )
        print(
            f"{label:<20} answers={len(result.answers)} "
            f"victim region={outcome.theta_estimate:.2%} "
            f"attack succeeds={outcome.succeeded(args.theta0)}"
        )
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    params = solve_partition(args.n, args.d, args.delta)
    print(f"alpha (subgroups)  : {params.alpha}  sizes {params.subgroup_sizes}")
    print(f"beta (segments)    : {params.beta}  sizes {params.segment_sizes}")
    print(f"delta' (candidates): {params.delta_prime} (requested {args.delta})")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.serve import ServeConfig, ServeEngine, WorkloadSpec, generate_workload
    from repro.transport.faults import FaultPlan

    lsp = LSPServer(load_sequoia(args.pois), seed=args.seed)
    config = PPGNNConfig(
        d=args.d,
        delta=args.delta,
        k=args.k,
        keysize=args.keysize,
        key_seed=args.seed,
        sanitation_samples=16,
    )
    spec = WorkloadSpec(
        queries=args.queries,
        rate_qps=args.rate,
        protocol_mix={"ppgnn": 2.0, "ppgnn-opt": 1.0, "naive": 1.0},
        group_size_mix={2: 1.0, 3: 1.0},
        k_mix={args.k: 1.0},
        tenants=("tenant-0", "tenant-1"),
        groups=args.groups,
        repeat_fraction=args.repeat_fraction,
        seed=args.seed,
    )
    serve = ServeConfig(
        workers=args.workers,
        executor=args.executor,
        policy=args.policy,
        faults=FaultPlan.uniform(args.fault_rate, seed=args.seed)
        if args.fault_rate > 0
        else None,
        obs=args.obs or args.trace_out is not None,
    )
    workload = generate_workload(spec, lsp.space)
    report = ServeEngine(lsp, config, serve).run(workload)
    if args.trace_out:
        spans = (report.obs or {}).get("spans", [])
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            for span in spans:
                fh.write(json_module.dumps(span, sort_keys=True) + "\n")
        print(f"trace: {len(spans)} spans -> {args.trace_out}")
    if args.json:
        print(json_module.dumps(report.to_dict(include_wall=True), indent=2))
    else:
        print(
            f"served {report.completed}/{report.queries} queries "
            f"({report.failed} failed, {report.rejected} rejected) "
            f"on {serve.workers} {serve.executor} workers [{serve.policy}]"
        )
        print(
            f"simulated throughput: {report.throughput_qps:.2f} qps; "
            f"wall-clock: {report.wall_qps:.2f} qps "
            f"({format_seconds(report.wall_seconds)})"
        )
        print(
            f"latency p50/p95/p99: {report.latency_p50:.3f}/"
            f"{report.latency_p95:.3f}/{report.latency_p99:.3f} s simulated"
        )
        print(
            f"kNN cache: {report.cache['hits']} hits / "
            f"{report.cache['misses']} misses; nonce pool hit rate "
            f"{report.pool['hit_rate']:.0%}"
        )
        if report.retransmissions:
            print(f"transport: {report.retransmissions} retransmissions")
    if args.record:
        from repro.bench.recorder import SeriesRecorder

        path = SeriesRecorder(args.record).record_json(
            "serve",
            report.to_dict(include_wall=True),
            keysize=args.keysize,
            config={
                "pois": args.pois,
                "queries": args.queries,
                "groups": args.groups,
                "workers": args.workers,
                "executor": args.executor,
                "policy": args.policy,
                "rate_qps": args.rate,
                "repeat_fraction": args.repeat_fraction,
                "fault_rate": args.fault_rate,
                "seed": args.seed,
            },
        )
        print(f"recorded: {path}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import Observability, parse_jsonl, render_span_tree

    if args.input is not None:
        with open(args.input, encoding="utf-8") as fh:
            spans = parse_jsonl(fh.read())
        print(render_span_tree(spans))
        return 0

    obs = Observability()
    config = _build_config(args, sanitize=args.n > 1)
    runner = _PROTOCOLS.get(args.protocol, run_ppgnn)
    lsp = LSPServer(
        load_sequoia(args.pois), aggregate_name=args.aggregate, seed=args.seed
    )
    group = random_group(max(args.n, 2), lsp.space, np.random.default_rng(args.seed))
    runner(lsp, group, config, seed=args.seed, obs=obs)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(obs.tracer.export_jsonl() + "\n")
        print(f"trace: {len(obs.tracer.spans())} spans -> {args.out}")
    print(render_span_tree(obs.tracer.spans()))
    snapshot = obs.snapshot()
    if snapshot.counters:
        print()
        print("metrics:")
        for name in sorted(snapshot.counters):
            print(f"  {name} = {snapshot.counters[name]}")
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "query": _cmd_query,
    "attack": _cmd_attack,
    "solve": _cmd_solve,
    "serve-bench": _cmd_serve_bench,
    "trace": _cmd_trace,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
