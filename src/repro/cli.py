"""Command-line interface.

Installed as the ``repro`` console script:

- ``repro info``    — library, parameter, and paper metadata,
- ``repro query``   — run one privacy-preserving (group) kNN query with
  chosen privacy parameters and print the answer plus the cost report,
- ``repro attack``  — run the full-collusion inequality attack against a
  sanitized and an unsanitized answer, side by side,
- ``repro solve``   — solve the partition parameters for an (n, d, delta)
  triple (Eqns 7-10) and print the layout,
- ``repro serve-bench`` — run a seeded multi-session workload through the
  :mod:`repro.serve` engine and print (optionally record) the serving
  report,
- ``repro trace`` — render a span tree: either from a recorded JSONL
  trace (``--input``) or by running one traced query, flagging the
  slowest path and printing the metric counters it published,
- ``repro analyze`` — trace analytics: per-phase attribution
  (crypto/transport/queue/compute), the exact critical path, queue-delay
  attribution, per-query op counts, and SLO evaluation over a recorded
  trace or serving report,
- ``repro perf-check`` — the performance sentinel: run a pinned
  per-protocol workload, record (``--record``) or check its exact
  counters and timings against ``benchmarks/baselines/``, and exit
  nonzero when an exact counter regressed,
- ``repro trend`` — the cross-commit run ledger: append perf-check
  reports, bench documents, or baselines into ``benchmarks/series/``
  (``--append``), render the sparkline trend dashboard (``--report``),
  and gate on unexplained exact-counter changepoints (``--check``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro import __version__
from repro.attacks.inequality import inequality_attack
from repro.bench.harness import format_bytes, format_seconds
from repro.core.config import PPGNNConfig
from repro.core.group import random_group, run_ppgnn
from repro.core.lsp import LSPServer
from repro.core.naive import run_naive
from repro.core.opt import run_ppgnn_opt
from repro.core.single import run_single_user
from repro.datasets.sequoia import load_sequoia
from repro.errors import ReproError
from repro.partition.solver import solve_partition

_PROTOCOLS = {
    "ppgnn": run_ppgnn,
    "opt": run_ppgnn_opt,
    "naive": run_naive,
}

#: Canonical protocol names the sentinel baselines are keyed by.
_PERF_PROTOCOLS = ("ppgnn", "ppgnn-opt", "naive")

_PERF_RUNNERS = {
    "ppgnn": run_ppgnn,
    "ppgnn-opt": run_ppgnn_opt,
    "naive": run_naive,
}


def _add_common_query_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pois", type=int, default=10_000, help="database size")
    parser.add_argument("--n", type=int, default=8, help="group size")
    parser.add_argument("--d", type=int, default=25, help="Privacy I parameter")
    parser.add_argument("--delta", type=int, default=100, help="Privacy II parameter")
    parser.add_argument("--k", type=int, default=8, help="POIs to retrieve")
    parser.add_argument(
        "--theta0", type=float, default=0.05, help="Privacy IV parameter"
    )
    parser.add_argument("--keysize", type=int, default=256, help="Paillier bits")
    parser.add_argument("--seed", type=int, default=1, help="randomness seed")
    parser.add_argument(
        "--aggregate", default="sum", choices=["sum", "max", "min"], help="F"
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for the `repro` console script."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privacy Preserving Group Nearest Neighbor Search (EDBT 2018)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show library and paper metadata")

    query = sub.add_parser("query", help="run one privacy-preserving query")
    _add_common_query_args(query)
    query.add_argument(
        "--protocol",
        default="ppgnn",
        choices=sorted(_PROTOCOLS) + ["nas"],
        help="protocol variant",
    )

    attack = sub.add_parser("attack", help="demonstrate the collusion attack")
    _add_common_query_args(attack)
    attack.add_argument(
        "--samples", type=int, default=20_000, help="attack Monte-Carlo samples"
    )

    solve = sub.add_parser("solve", help="solve the partition parameters")
    solve.add_argument("--n", type=int, required=True)
    solve.add_argument("--d", type=int, required=True)
    solve.add_argument("--delta", type=int, required=True)

    serve = sub.add_parser(
        "serve-bench", help="run a serving workload and report throughput"
    )
    serve.add_argument("--pois", type=int, default=2_000, help="database size")
    serve.add_argument("--queries", type=int, default=50, help="jobs to serve")
    serve.add_argument("--groups", type=int, default=6, help="distinct query groups")
    serve.add_argument("--d", type=int, default=4, help="Privacy I parameter")
    serve.add_argument("--delta", type=int, default=8, help="Privacy II parameter")
    serve.add_argument("--k", type=int, default=4, help="POIs to retrieve")
    serve.add_argument("--keysize", type=int, default=256, help="Paillier bits")
    serve.add_argument("--seed", type=int, default=1, help="workload seed")
    serve.add_argument("--workers", type=int, default=2, help="serving workers")
    serve.add_argument(
        "--executor", default="serial", choices=["serial", "process"],
        help="execution backend",
    )
    serve.add_argument(
        "--policy", default="fifo", choices=["fifo", "shortest-cost", "fair-share"],
        help="scheduling policy",
    )
    serve.add_argument("--rate", type=float, default=8.0, help="arrival rate (qps)")
    serve.add_argument(
        "--repeat-fraction", type=float, default=0.3,
        help="probability a job re-issues an earlier query verbatim",
    )
    serve.add_argument(
        "--fault-rate", type=float, default=0.0,
        help="uniform drop/dup/reorder/corrupt rate (0 disables faults)",
    )
    serve.add_argument(
        "--record", metavar="DIR", default=None,
        help="write BENCH_serve.json into this directory",
    )
    serve.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    serve.add_argument(
        "--obs", action="store_true",
        help="collect traces and metrics; embeds them in the report",
    )
    serve.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write the merged span trace as JSONL (implies --obs)",
    )
    serve.add_argument(
        "--shards", type=int, default=0,
        help="partition the database across this many LSP shards "
        "(0 serves from a single LSP)",
    )
    serve.add_argument(
        "--shard-replicas", type=int, default=1,
        help="replicas per shard for failover and hedging",
    )
    serve.add_argument(
        "--quorum", type=float, default=0.5,
        help="minimum POI coverage fraction before a job fails outright",
    )
    serve.add_argument(
        "--partition", default="spatial",
        choices=["spatial", "round-robin", "str"],
        help="shard partitioning strategy",
    )
    serve.add_argument(
        "--index", default="rtree",
        choices=["rtree", "kdtree", "grid", "bruteforce", "spill", "lsh"],
        help="index substrate behind the kGNN engine (exact kinds keep the "
        "answers digest byte-identical; spill/lsh are approximate and mark "
        "answers partial with a measured recall)",
    )
    serve.add_argument(
        "--hedge-factor", type=float, default=2.0,
        help="hedge a straggling sub-query once it exceeds this multiple "
        "of its predicted time (<= 1 disables hedging)",
    )
    serve.add_argument(
        "--kill-shard", action="append", type=int, default=None,
        metavar="SHARD", dest="kill_shards",
        help="kill every replica of this shard from the start "
        "(repeatable; exercises graceful degradation)",
    )
    serve.add_argument(
        "--overload", action="store_true",
        help="inject a flash crowd: 4x the arrival rate over the middle "
        "half of the workload span",
    )
    serve.add_argument(
        "--control", action="store_true",
        help="run the closed-loop overload controller (autoscaling, "
        "policy switching, brownout, circuit breakers)",
    )
    serve.add_argument(
        "--max-workers", type=int, default=None,
        help="autoscaling ceiling for --control (default: no scaling)",
    )
    serve.add_argument(
        "--shed-policy", default="degrade",
        choices=["degrade", "reject", "off"],
        help="brownout behaviour under --control: degrade k, reject with "
        "retry-after, or disable shedding",
    )
    serve.add_argument(
        "--brownout-k", type=int, default=None,
        help="k served to browned-out tenants (default: half the "
        "requested k)",
    )
    serve.add_argument(
        "--slo-p99", type=float, default=None,
        help="p99 latency budget (simulated seconds) fed to the "
        "controller's SLO signal",
    )

    index_build = sub.add_parser(
        "index-build",
        help="bulk-load a large POI set through the parallel STR builder",
    )
    index_build.add_argument(
        "--count", type=int, default=1_000_000, help="POIs to generate and load"
    )
    index_build.add_argument(
        "--kind", default="uniform", choices=["uniform", "clustered", "geo-skew"],
        help="streaming POI distribution",
    )
    index_build.add_argument(
        "--workers", type=int, default=4, help="STR build worker processes"
    )
    index_build.add_argument(
        "--max-entries", type=int, default=64, help="R-tree fan-out"
    )
    index_build.add_argument(
        "--verify-count", type=int, default=50_000,
        help="also build this many POIs serially AND in parallel and compare "
        "structural digests (0 skips the check)",
    )
    index_build.add_argument("--seed", type=int, default=1, help="dataset seed")
    index_build.add_argument(
        "--json", action="store_true", help="print the result as JSON"
    )

    trace = sub.add_parser(
        "trace", help="render a span tree from a trace file or a live query"
    )
    _add_common_query_args(trace)
    trace.add_argument(
        "--protocol",
        default="ppgnn",
        choices=sorted(_PROTOCOLS),
        help="protocol variant to trace (live mode)",
    )
    trace.add_argument(
        "--input", metavar="FILE", default=None,
        help="render this JSONL trace instead of running a query",
    )
    trace.add_argument(
        "--out", metavar="FILE", default=None,
        help="also write the captured trace as JSONL (live mode)",
    )
    trace.add_argument(
        "--allow-truncated", action="store_true",
        help="drop a partial last line (killed run) instead of erroring",
    )

    analyze = sub.add_parser(
        "analyze",
        help="phase attribution, critical path, queue delay, and SLOs",
    )
    source = analyze.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--input", metavar="FILE", default=None,
        help="analyze a recorded JSONL span trace",
    )
    source.add_argument(
        "--report", metavar="FILE", default=None,
        help="analyze a serving report JSON (to_dict output or BENCH_*.json)",
    )
    analyze.add_argument(
        "--allow-truncated", action="store_true",
        help="drop a partial last trace line instead of erroring",
    )
    analyze.add_argument(
        "--slo-p50", type=float, default=None, metavar="SECONDS",
        help="simulated latency p50 budget",
    )
    analyze.add_argument(
        "--slo-p95", type=float, default=None, metavar="SECONDS",
        help="simulated latency p95 budget",
    )
    analyze.add_argument(
        "--slo-p99", type=float, default=None, metavar="SECONDS",
        help="simulated latency p99 budget",
    )
    analyze.add_argument(
        "--error-budget", type=float, default=None, metavar="FRACTION",
        help="tolerated failed+rejected fraction (enables SLO evaluation)",
    )
    analyze.add_argument(
        "--queue-budget", type=float, default=None, metavar="SECONDS",
        help="mean simulated queue-wait budget",
    )
    analyze.add_argument(
        "--exemplars", action="store_true",
        help="resolve histogram exemplars in a --report into rendered "
        "span traces (requires a report produced with exemplars enabled)",
    )

    perf = sub.add_parser(
        "perf-check",
        help="record or check per-protocol perf baselines (the CI gate)",
    )
    perf.add_argument(
        "--baseline-dir", default="benchmarks/baselines",
        help="baseline store location",
    )
    perf.add_argument(
        "--suite", choices=("protocols", "crypto"), default="protocols",
        help="'protocols': end-to-end protocol workloads; 'crypto': the "
        "Paillier hot-path micro-suite at --keysize (baseline "
        "'crypto-<keysize>')",
    )
    perf.add_argument(
        "--protocols", nargs="+", default=list(_PERF_PROTOCOLS),
        choices=list(_PERF_PROTOCOLS), metavar="PROTOCOL",
        help="protocols to exercise (default: all three)",
    )
    perf.add_argument("--pois", type=int, default=300, help="database size")
    perf.add_argument("--n", type=int, default=3, help="group size")
    perf.add_argument("--d", type=int, default=3, help="Privacy I parameter")
    perf.add_argument("--delta", type=int, default=6, help="Privacy II parameter")
    perf.add_argument("--k", type=int, default=3, help="POIs to retrieve")
    perf.add_argument("--keysize", type=int, default=128, help="Paillier bits")
    perf.add_argument("--seed", type=int, default=7, help="pinned workload seed")
    perf.add_argument(
        "--record", action="store_true",
        help="refresh the baselines from this run instead of checking",
    )
    perf.add_argument(
        "--rel-tolerance", type=float, default=0.5, metavar="FRACTION",
        help="relative tolerance for wall-clock metrics",
    )
    perf.add_argument(
        "--fail-on-timing", action="store_true",
        help="also exit nonzero on timing regressions beyond the tolerance",
    )
    perf.add_argument(
        "--report-out", metavar="FILE", default=None,
        help="write the markdown regression report here",
    )

    trend = sub.add_parser(
        "trend",
        help="append runs to the cross-commit perf ledger and analyze trends",
    )
    trend.add_argument(
        "--series-dir", default="benchmarks/series",
        help="ledger location (one append-only JSONL file per suite)",
    )
    trend.add_argument(
        "--append", action="append", metavar="FILE", default=None,
        help="append ledger records parsed from this file — a perf-check "
        "markdown report (embedded ledger stamps), a baseline JSON, a "
        "BENCH_*.json document, or a raw ledger JSONL fragment (repeatable)",
    )
    trend.add_argument(
        "--accept", action="append", metavar="METRIC", default=None,
        help="mark this exact metric's movement in the appended records as "
        "explained; accepted steps never fail --check (repeatable)",
    )
    trend.add_argument(
        "--suite", action="append", metavar="SUITE", default=None,
        help="restrict --check/--report to these suites (repeatable; "
        "default: every suite with a ledger file)",
    )
    trend.add_argument(
        "--check", action="store_true",
        help="exit 1 on unexplained exact-counter regressions",
    )
    trend.add_argument(
        "--report", nargs="?", const="BENCH_TRENDS.md", default=None,
        metavar="FILE",
        help="render the markdown trend dashboard (default: BENCH_TRENDS.md)",
    )
    trend.add_argument(
        "--window", type=int, default=8,
        help="trailing records in the rolling timing tolerance band",
    )
    trend.add_argument(
        "--allow-truncated", action="store_true",
        help="recover a ledger whose last line was cut off by a killed "
        "append instead of erroring",
    )
    return parser


def _build_config(args: argparse.Namespace, sanitize: bool = True) -> PPGNNConfig:
    return PPGNNConfig(
        d=args.d,
        delta=args.delta,
        k=args.k,
        theta0=args.theta0,
        sanitize=sanitize,
        keysize=args.keysize,
        aggregate_name=args.aggregate,
        key_seed=args.seed,
    )


def _cmd_info(_: argparse.Namespace) -> int:
    print(f"repro {__version__}")
    print("Reproduction of: Privacy Preserving Group Nearest Neighbor Search")
    print("                 (Wu, Wang, Zhang, Lin, Chen — EDBT 2018)")
    print("Protocols: ppgnn, ppgnn-opt, naive, ppgnn-nas, single-user")
    print("Baselines: apnn, ippf, glp")
    print("Defaults (paper Table 3): d=25 delta=100 k=8 n=8 theta0=0.05")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    sanitize = args.protocol != "nas" and args.n > 1
    config = _build_config(args, sanitize=sanitize)
    runner = _PROTOCOLS.get(args.protocol, run_ppgnn)
    lsp = LSPServer(
        load_sequoia(args.pois), aggregate_name=args.aggregate, seed=args.seed
    )
    print(f"database: {args.pois} POIs; protocol: {args.protocol}; n={args.n}")
    if args.n == 1:
        location = lsp.space.sample_point(np.random.default_rng(args.seed))
        result = run_single_user(lsp, location, config, seed=args.seed)
    else:
        group = random_group(args.n, lsp.space, np.random.default_rng(args.seed))
        result = runner(lsp, group, config, seed=args.seed)
    print(f"answer ({len(result.answers)} of k={args.k} POIs):")
    for rank, answer in enumerate(result.answers, start=1):
        print(f"  {rank}. {lsp.engine.poi_by_id(answer.poi_id)}")
    report = result.report
    print(f"candidate queries : {result.delta_prime}")
    print(f"communication     : {format_bytes(report.total_comm_bytes)}")
    print(f"user computation  : {format_seconds(report.user_cost_seconds)}")
    print(f"LSP computation   : {format_seconds(report.lsp_cost_seconds)}")
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    lsp = LSPServer(
        load_sequoia(args.pois), aggregate_name=args.aggregate, seed=args.seed
    )
    group = random_group(max(args.n, 2), lsp.space, np.random.default_rng(args.seed))
    for label, sanitize in (("without sanitation", False), ("with sanitation", True)):
        config = _build_config(args, sanitize=sanitize)
        result = run_ppgnn(lsp, group, config, seed=args.seed)
        outcome = inequality_attack(
            [a.location for a in result.answers],
            group[1:],
            lsp.space,
            lsp.aggregate,
            n_samples=args.samples,
            rng=np.random.default_rng(args.seed),
            true_target=group[0],
        )
        print(
            f"{label:<20} answers={len(result.answers)} "
            f"victim region={outcome.theta_estimate:.2%} "
            f"attack succeeds={outcome.succeeded(args.theta0)}"
        )
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    params = solve_partition(args.n, args.d, args.delta)
    print(f"alpha (subgroups)  : {params.alpha}  sizes {params.subgroup_sizes}")
    print(f"beta (segments)    : {params.beta}  sizes {params.segment_sizes}")
    print(f"delta' (candidates): {params.delta_prime} (requested {args.delta})")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.serve import ServeConfig, ServeEngine, WorkloadSpec, generate_workload
    from repro.transport.faults import FaultPlan

    lsp = LSPServer(load_sequoia(args.pois), seed=args.seed, index=args.index)
    cluster = None
    if args.shards > 0:
        from repro.cluster import ClusterConfig, ShardFaultPlan

        faults = None
        if args.kill_shards:
            kills = {
                (shard, replica): 0
                for shard in sorted(set(args.kill_shards))
                for replica in range(args.shard_replicas)
            }
            faults = ShardFaultPlan.killing(kills, seed=args.seed)
        cluster = ClusterConfig(
            shards=args.shards,
            replicas=args.shard_replicas,
            quorum=args.quorum,
            partition=args.partition,
            hedge_factor=args.hedge_factor if args.hedge_factor > 1.0 else None,
            faults=faults,
        )
    config = PPGNNConfig(
        d=args.d,
        delta=args.delta,
        k=args.k,
        keysize=args.keysize,
        key_seed=args.seed,
        # The scatter-gather merge needs full local top-k lists, so
        # cluster mode serves the paper's unsanitized (NAS) variant.
        sanitize=cluster is None,
        sanitation_samples=16,
    )
    # Nominal workload span at the base rate; anchors the flash-crowd
    # window and the control tick so both scale with the experiment size.
    span = args.queries / args.rate
    spec = WorkloadSpec(
        queries=args.queries,
        rate_qps=args.rate,
        protocol_mix={"ppgnn": 2.0, "ppgnn-opt": 1.0, "naive": 1.0},
        group_size_mix={2: 1.0, 3: 1.0},
        k_mix={args.k: 1.0},
        tenants=("tenant-0", "tenant-1"),
        groups=args.groups,
        repeat_fraction=args.repeat_fraction,
        burst_multiplier=4.0 if args.overload else 1.0,
        burst_start=0.25 * span if args.overload else 0.0,
        burst_duration=0.5 * span if args.overload else 0.0,
        seed=args.seed,
    )
    control = None
    if args.control:
        from repro.obs.analyze import SLOPolicy
        from repro.serve import ControlConfig

        tick = span / 20
        control = ControlConfig(
            tick_seconds=tick,
            window_seconds=4 * tick,
            slo=SLOPolicy(latency_p99=args.slo_p99),
            max_workers=args.max_workers,
            shed_policy=args.shed_policy,
            brownout_k=args.brownout_k,
        )
    serve = ServeConfig(
        workers=args.workers,
        executor=args.executor,
        policy=args.policy,
        faults=FaultPlan.uniform(args.fault_rate, seed=args.seed)
        if args.fault_rate > 0
        else None,
        obs=args.obs or args.trace_out is not None,
        cluster=cluster,
        control=control,
        index=args.index,
    )
    workload = generate_workload(spec, lsp.space)
    report = ServeEngine(lsp, config, serve).run(workload)
    if args.trace_out:
        spans = (report.obs or {}).get("spans", [])
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            for span in spans:
                fh.write(json_module.dumps(span, sort_keys=True) + "\n")
        print(f"trace: {len(spans)} spans -> {args.trace_out}")
    if args.json:
        print(json_module.dumps(report.to_dict(include_wall=True), indent=2))
    else:
        print(
            f"served {report.completed}/{report.queries} queries "
            f"({report.failed} failed, {report.rejected} rejected) "
            f"on {serve.workers} {serve.executor} workers [{serve.policy}]"
        )
        print(
            f"simulated throughput: {report.throughput_qps:.2f} qps; "
            f"wall-clock: {report.wall_qps:.2f} qps "
            f"({format_seconds(report.wall_seconds)})"
        )
        print(
            f"latency p50/p95/p99: {report.latency_p50:.3f}/"
            f"{report.latency_p95:.3f}/{report.latency_p99:.3f} s simulated"
        )
        print(
            f"kNN cache: {report.cache['hits']} hits / "
            f"{report.cache['misses']} misses; nonce pool hit rate "
            f"{report.pool['hit_rate']:.0%}"
        )
        if report.retransmissions:
            print(f"transport: {report.retransmissions} retransmissions")
        if report.cluster is not None:
            c = report.cluster
            print(
                f"cluster: {c['shards']} shards x {c['replicas']} replicas; "
                f"{c['subqueries']} sub-queries, load imbalance "
                f"{c['load_imbalance']:.2f}"
            )
            print(
                f"faults: {c['failovers']} failovers, {c['hedges']} hedges "
                f"({c['hedge_wins']} won), {c['partial_answers']} partial "
                f"answers (min coverage {c['coverage_min']:.0%})"
            )
        if report.control is not None:
            ctl = report.control
            print(
                f"control: {ctl['ticks']} ticks; workers "
                f"{ctl['workers']['initial']}->{ctl['workers']['final']} "
                f"({ctl['scale_ups']} up / {ctl['scale_downs']} down), "
                f"{ctl['policy_switches']} policy switches, "
                f"{ctl['brownouts']} brownouts "
                f"({ctl['shed']} shed, {ctl['degraded']} degraded)"
            )
            if "breakers" in ctl:
                b = ctl["breakers"]
                print(
                    f"breakers: {b['opens']} opens, {b['probes']} probes, "
                    f"{b['short_circuits']} short-circuits"
                )
            for entry in ctl["timeline"]:
                burn = entry.get("signals", {}).get("burn")
                detail = entry.get("detail")
                extras = [
                    part
                    for part in (
                        f"burn {burn:.2f}x" if burn is not None else None,
                        f"-> {detail}" if detail is not None else None,
                        f"x{entry['count']}" if "count" in entry else None,
                        ",".join(entry["tenants"]) if entry.get("tenants") else None,
                    )
                    if part
                ]
                print(
                    f"  tick {entry['tick']:>3} {entry['action']:<14} "
                    + " ".join(extras)
                )
    if args.record:
        from repro.bench.recorder import SeriesRecorder

        path = SeriesRecorder(args.record).record_json(
            "serve",
            report.to_dict(include_wall=True),
            keysize=args.keysize,
            metrics=(report.obs or {}).get("metrics"),
            config={
                "pois": args.pois,
                "queries": args.queries,
                "groups": args.groups,
                "workers": args.workers,
                "executor": args.executor,
                "policy": args.policy,
                "rate_qps": args.rate,
                "repeat_fraction": args.repeat_fraction,
                "fault_rate": args.fault_rate,
                "shards": args.shards,
                "shard_replicas": args.shard_replicas,
                "overload": args.overload,
                "control": args.control,
                "seed": args.seed,
            },
        )
        print(f"recorded: {path}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import Observability, parse_jsonl, render_span_tree

    if args.input is not None:
        with open(args.input, encoding="utf-8") as fh:
            spans = parse_jsonl(
                fh.read(), allow_truncated_tail=args.allow_truncated
            )
        print(render_span_tree(spans))
        return 0

    obs = Observability()
    config = _build_config(args, sanitize=args.n > 1)
    runner = _PROTOCOLS.get(args.protocol, run_ppgnn)
    lsp = LSPServer(
        load_sequoia(args.pois), aggregate_name=args.aggregate, seed=args.seed
    )
    group = random_group(max(args.n, 2), lsp.space, np.random.default_rng(args.seed))
    runner(lsp, group, config, seed=args.seed, obs=obs)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(obs.tracer.export_jsonl() + "\n")
        print(f"trace: {len(obs.tracer.spans())} spans -> {args.out}")
    print(render_span_tree(obs.tracer.spans()))
    snapshot = obs.snapshot()
    if snapshot.counters:
        print()
        print("metrics:")
        for name in sorted(snapshot.counters):
            print(f"  {name} = {snapshot.counters[name]}")
    return 0


def _analyze_policy(args: argparse.Namespace):
    """An SLOPolicy from the CLI flags, or None when none were given."""
    from repro.obs import SLOPolicy

    flags = (
        args.slo_p50, args.slo_p95, args.slo_p99,
        args.error_budget, args.queue_budget,
    )
    if all(flag is None for flag in flags):
        return None
    return SLOPolicy(
        latency_p50=args.slo_p50,
        latency_p95=args.slo_p95,
        latency_p99=args.slo_p99,
        error_budget=args.error_budget if args.error_budget is not None else 0.01,
        queue_wait_budget=args.queue_budget,
    )


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.obs import (
        attribute_phases_by_protocol,
        parse_jsonl,
        render_attribution,
    )
    from repro.obs.analyze import (
        analyze_serve_report,
        load_report_document,
        render_exemplars,
    )

    if args.input is not None:
        if args.exemplars:
            raise ReproError(
                "--exemplars reads histogram exemplars from a serving "
                "report; use --report, not --input"
            )
        with open(args.input, encoding="utf-8") as fh:
            spans = parse_jsonl(
                fh.read(), allow_truncated_tail=args.allow_truncated
            )
        print(render_attribution(spans))
        per_protocol = attribute_phases_by_protocol(spans)
        if per_protocol:
            print()
            print("per-protocol phase shares:")
            for protocol in sorted(per_protocol):
                breakdown = per_protocol[protocol]
                shares = "  ".join(
                    f"{phase} {breakdown.fraction(phase):.1%}"
                    for phase in ("crypto", "transport", "queue", "compute")
                )
                print(f"  {protocol:<12} {shares}")
        return 0

    with open(args.report, encoding="utf-8") as fh:
        report = load_report_document(fh.read())
    rendered = analyze_serve_report(report, policy=_analyze_policy(args))
    print(rendered)
    if args.exemplars:
        print()
        print("exemplars:")
        print(render_exemplars(report))
    policy = _analyze_policy(args)
    if policy is not None:
        from repro.obs import evaluate_slo

        if not evaluate_slo(report, policy).ok:
            return 1
    return 0


def _perf_metrics(
    protocol: str, args: argparse.Namespace
) -> tuple[dict[str, float], dict[str, int]]:
    """Run one pinned query and distill it into sentinel metrics.

    Everything under ``ops.`` / ``comm.`` / ``protocol.`` / ``answers.``
    is a deterministic function of the seeded workload (exact, zero
    tolerance); ``time.*`` is wall clock (relative tolerance only).
    Returns the metrics alongside the traced phase breakdown (the
    ``repro analyze`` attribution), which rides into the run ledger so
    trend changepoints can name the phase the offending commit spent in.
    """
    from repro.core.common import group_keypair
    from repro.obs import Observability, attribute_phases, estimate_modmuls

    config = PPGNNConfig(
        d=args.d,
        delta=args.delta,
        k=args.k,
        sanitize=args.n > 1,
        keysize=args.keysize,
        key_seed=args.seed,
    )
    lsp = LSPServer(load_sequoia(args.pois), seed=args.seed)
    group = random_group(args.n, lsp.space, np.random.default_rng(args.seed))
    obs = Observability()
    result = _PERF_RUNNERS[protocol](lsp, group, config, seed=args.seed, obs=obs)
    counters = obs.snapshot().counters
    modmuls = estimate_modmuls(counters, group_keypair(config))
    rounds = sum(
        1 for span in obs.tracer.spans() if span.name.startswith("round.")
    )
    phases = attribute_phases(obs.tracer.spans()).ticks
    return {
        "ops.encryptions": counters.get("crypto.encryptions", 0),
        "ops.decryptions.crt": counters.get("crypto.decryptions.crt", 0),
        "ops.decryptions.generic": counters.get("crypto.decryptions.generic", 0),
        "ops.scalar_muls": counters.get("crypto.scalar_muls", 0),
        "ops.additions": counters.get("crypto.additions", 0),
        "ops.kgnn_queries": counters.get("lsp.kgnn_queries", 0),
        "ops.modmuls_estimated": modmuls["total"],
        "protocol.rounds": rounds,
        "comm.bytes_total": result.report.total_comm_bytes,
        "answers.count": len(result.answers),
        "index.queries": lsp.engine.index_counters.queries,
        "index.nodes_visited": lsp.engine.index_counters.nodes_visited,
        "index.candidates_scored": lsp.engine.index_counters.candidates_scored,
        "time.user_seconds": round(result.report.user_cost_seconds, 6),
        "time.lsp_seconds": round(result.report.lsp_cost_seconds, 6),
    }, phases


def _crypto_micro_metrics(args: argparse.Namespace) -> dict[str, float]:
    """The Paillier hot-path micro-suite at one keysize.

    Runs a pinned mix of encryptions, pooled encryptions, rerandomizations,
    a homomorphic dot product, pool refills (windowed and CRT-split), and
    both decryption paths through profiled keys under the ambient fast-path
    setting (``REPRO_FASTEXP``); then replays the identical mix with the
    *opposite* setting and insists every produced ciphertext value matches
    — the digest the sentinel freezes is therefore provably independent of
    the fast paths.  The ``ops.*`` counters are exact big-integer
    multiplication ledgers per op class, window tables included
    (zero-tolerance, lower is better), so any accidental cost regression
    in the crypto hot path fails the gate — and recording with
    ``REPRO_FASTEXP=0`` then checking with the default demonstrates the
    fast paths strictly lowering them.  CRT-split refills halve the
    *width* of each multiplication rather than the count, so they gate on
    limb-weighted work (``mul_work64``) instead of raw muls.
    """
    import hashlib
    import random
    import time as time_module

    from repro.crypto import fastexp
    from repro.crypto.homomorphic import hom_dot
    from repro.crypto.noncepool import (
        NoncePool,
        decrypt_packed,
        encrypt_packed,
        encrypt_with_pool,
    )
    from repro.crypto.paillier import generate_keypair
    from repro.obs.profile import profile_keypair

    packed_fields = [3, 1, 4, 1, 5, 9, 2, 6]

    def run(fast: bool):
        with fastexp.forced(fast):
            keys, profiler = profile_keypair(
                generate_keypair(args.keysize, seed=args.seed)
            )
            pk, sk = keys.public_key, keys.secret_key
            rng = random.Random(args.seed * 7919 + args.keysize)
            values: list[int] = []

            ciphertexts = [pk.encrypt(m, rng=rng) for m in range(8)]
            values += [c.value for c in ciphertexts]
            rerandomized = [pk.rerandomize(c, rng) for c in ciphertexts[:4]]
            values += [c.value for c in rerandomized]

            # Public pool: refills run the windowed fixed-exponent program.
            pool = NoncePool(pk)
            pool.refill(8, rng=random.Random(args.seed + 1))
            from_pool = [encrypt_with_pool(pool, m) for m in range(8)]
            values += [c.value for c in from_pool]

            # Key-owner pool: refills run the CRT half-width path; the
            # packed encryption spends one factor for all eight fields.
            owner_pool = NoncePool(pk, sk)
            owner_pool.refill(4, rng=random.Random(args.seed + 2))
            packed = encrypt_packed(owner_pool, packed_fields, 8)
            values.append(packed.value)
            if decrypt_packed(sk, packed, 8, len(packed_fields)) != packed_fields:
                raise ReproError("packed encryption round trip failed")

            # Full-width scalars, as in the answer-matrix selection.
            scalars = [rng.randrange(1, pk.n) for _ in range(16)]
            dot_ledger = fastexp.MulLedger()
            dot = hom_dot(scalars, ciphertexts * 2, ledger=dot_ledger)
            values.append(dot.value)

            for c in ciphertexts:
                sk.decrypt_with_path(c, use_crt=True)
            for c in from_pool[:2]:
                sk.decrypt_with_path(c, use_crt=False)
            if [sk.decrypt(c) for c in rerandomized] != [0, 1, 2, 3]:
                raise ReproError("rerandomized ciphertexts decrypted wrongly")

            return (
                values,
                profiler,
                dot_ledger.muls,
                pool.stats.fast_muls,
                owner_pool.stats.fast_muls,
            )

    ambient = fastexp.enabled()
    started = time_module.perf_counter()
    values, profiler, dot_muls, windowed_muls, crt_muls = run(ambient)
    suite_seconds = time_module.perf_counter() - started
    other_values, *_ = run(not ambient)
    if values != other_values:
        raise ReproError(
            "fast exponentiation paths changed ciphertext values — the "
            "crypto micro-suite refuses to record a tainted baseline"
        )

    digest = hashlib.sha256(
        b"".join(v.to_bytes((v.bit_length() + 7) // 8 or 1, "big") for v in values)
    ).digest()
    ledger = profiler.to_dict()

    def muls(op_class: str) -> int:
        return ledger.get(op_class, {}).get("bigint_muls", 0)

    # The CRT refill ran at half width (modulus p^2 / q^2 of ~keysize
    # bits) when fast, full width (~2*keysize) otherwise; weight by the
    # squared 64-bit limb count so the two are commensurable.
    crt_width = args.keysize if ambient else 2 * args.keysize
    crt_work = round(crt_muls * (crt_width / 64.0) ** 2)
    metrics = {
        "ops.encrypt.bigint_muls": muls("encrypt") + muls("encrypt.tables"),
        "ops.encrypt_pool.bigint_muls": muls("encrypt.pooled"),
        "ops.rerandomize.bigint_muls": (
            muls("rerandomize") + muls("rerandomize.tables")
        ),
        "ops.dot.bigint_muls": dot_muls,
        "ops.refill_windowed.bigint_muls": windowed_muls,
        "ops.decrypt_crt.bigint_muls": (
            muls("decrypt.crt") + muls("decrypt.crt.tables")
        ),
        "ops.decrypt_generic.bigint_muls": muls("decrypt.generic"),
    }
    metrics["ops.total.bigint_muls"] = sum(metrics.values())
    metrics["ops.refill_crt.mul_work64"] = crt_work
    metrics["answers.digest_mod"] = int.from_bytes(digest[:6], "big")
    metrics["time.suite_seconds"] = round(suite_seconds, 6)
    return metrics


def _cmd_index_build(args: argparse.Namespace) -> int:
    import json as json_module
    import time

    from repro.datasets import stream_pois
    from repro.index.rtree import RTree
    from repro.spatial import parallel_str_bulk_load, tree_digest

    if args.count < 1:
        raise ReproError("--count must be >= 1")
    started = time.perf_counter()
    tree = RTree(max_entries=args.max_entries)
    parallel_str_bulk_load(
        tree,
        ((poi.location, poi) for poi in stream_pois(args.kind, args.count, seed=args.seed)),
        workers=args.workers,
    )
    build_seconds = time.perf_counter() - started
    result = {
        "count": len(tree),
        "kind": args.kind,
        "workers": args.workers,
        "max_entries": args.max_entries,
        "height": tree.height,
        "build_seconds": round(build_seconds, 3),
        "pois_per_second": round(args.count / build_seconds),
    }
    if args.verify_count > 0:
        verify = min(args.verify_count, args.count)
        entries = [
            (poi.location, poi)
            for poi in stream_pois(args.kind, verify, seed=args.seed)
        ]
        serial = RTree(max_entries=args.max_entries)
        serial.bulk_load(entries)
        parallel = RTree(max_entries=args.max_entries)
        parallel_str_bulk_load(parallel, entries, workers=max(2, args.workers))
        serial_digest = tree_digest(serial)
        parallel_digest = tree_digest(parallel)
        result["verify_count"] = verify
        result["serial_digest"] = serial_digest
        result["parallel_digest"] = parallel_digest
        result["digests_identical"] = serial_digest == parallel_digest
        if not result["digests_identical"]:
            print(json_module.dumps(result, indent=2))
            print("error: serial and parallel STR builds diverged", file=sys.stderr)
            return 1
    if args.json:
        print(json_module.dumps(result, indent=2))
    else:
        print(
            f"built {result['count']} POIs ({args.kind}) in "
            f"{result['build_seconds']}s with {args.workers} workers "
            f"({result['pois_per_second']}/s, height {result['height']})"
        )
        if args.verify_count > 0:
            print(
                f"serial == parallel digest at {result['verify_count']} POIs: "
                f"{result['digests_identical']}"
            )
    return 0


def _cmd_perf_check(args: argparse.Namespace) -> int:
    from repro.bench.recorder import git_sha
    from repro.bench.sentinel import (
        BaselineRecord,
        BaselineStore,
        compare_to_baseline,
        render_markdown,
    )
    from repro.obs.series import LedgerRecord

    store = BaselineStore(args.baseline_dir)
    if args.suite == "crypto":
        workload = {"suite": "crypto", "seed": args.seed}
        runs: list[str] = [f"crypto-{args.keysize}"]
    else:
        workload = {
            "pois": args.pois,
            "n": args.n,
            "d": args.d,
            "delta": args.delta,
            "k": args.k,
            "seed": args.seed,
        }
        runs = list(args.protocols)
    sha = git_sha()
    comparisons = []
    ledger_records = []
    for experiment in runs:
        if args.suite == "crypto":
            metrics = _crypto_micro_metrics(args)
            phases: dict[str, int] = {}
        else:
            metrics, phases = _perf_metrics(experiment, args)
        ledger_records.append(
            LedgerRecord(
                suite=experiment,
                git_sha=sha,
                metrics=metrics,
                keysize=args.keysize,
                config=workload,
                phases=phases or None,
                source="perf-check",
            )
        )
        if args.record:
            record = BaselineRecord(
                experiment=experiment,
                metrics=metrics,
                git_sha=sha,
                keysize=args.keysize,
                config=workload,
            )
            path = store.save(record)
            print(f"recorded baseline: {path}")
            comparisons.append(
                compare_to_baseline(record, metrics, args.rel_tolerance, sha)
            )
            continue
        baseline = store.load(experiment)
        if baseline.keysize != args.keysize or baseline.config != workload:
            raise ReproError(
                f"baseline {experiment!r} was recorded for keysize="
                f"{baseline.keysize} config={baseline.config}, but this run "
                f"uses keysize={args.keysize} config={workload}; matching "
                "workloads are required — re-record or adjust the flags"
            )
        comparison = compare_to_baseline(
            baseline, metrics, args.rel_tolerance, sha
        )
        comparisons.append(comparison)
        exact = comparison.exact_regressions
        timing = comparison.timing_regressions
        improved = comparison.improved
        verdict = "ok" if not exact else "REGRESSED"
        print(
            f"{experiment:<10} {verdict}: {len(exact)} exact regression(s), "
            f"{len(timing)} timing regression(s), {len(improved)} improvement(s)"
        )
        for delta in exact + timing:
            print(
                f"  regressed {delta.name}: {delta.baseline:g} -> "
                f"{delta.current:g} ({delta.kind})"
            )
        for delta in improved:
            print(
                f"  improved  {delta.name}: {delta.baseline:g} -> "
                f"{delta.current:g}"
            )
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as fh:
            fh.write(render_markdown(comparisons, ledger_records))
        print(f"report: {args.report_out}")
    if args.record:
        return 0
    failed = any(not c.ok for c in comparisons)
    if args.fail_on_timing:
        failed = failed or any(c.timing_regressions for c in comparisons)
    return 1 if failed else 0


def _cmd_trend(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.obs.series import RunLedger, records_from_text
    from repro.obs.trend import check_ledger, render_check, render_trends

    ledger = RunLedger(args.series_dir)
    appended = 0
    for source in args.append or []:
        with open(source, encoding="utf-8") as fh:
            records = records_from_text(fh.read())
        if not records:
            raise ReproError(f"{source}: no appendable records found")
        for record in records:
            if args.accept:
                record = dataclasses.replace(
                    record,
                    accepted=tuple(
                        sorted(set(record.accepted) | set(args.accept))
                    ),
                )
            stored, was_new = ledger.append(
                record, allow_truncated_tail=args.allow_truncated
            )
            state = "appended" if was_new else "already recorded"
            print(
                f"{state}: {stored.suite} @ {stored.git_sha[:12]} "
                f"(config {stored.config_digest}, seq {stored.seq})"
            )
            appended += 1 if was_new else 0
    if args.append:
        print(f"{appended} new record(s) under {args.series_dir}")
    if args.report is not None:
        dashboard = render_trends(ledger, suites=args.suite, window=args.window)
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(dashboard)
        print(f"trend dashboard: {args.report}")
    if args.check:
        check = check_ledger(ledger, suites=args.suite, window=args.window)
        print(render_check(check))
        return 0 if check.ok else 1
    if not args.append and args.report is None:
        # Bare `repro trend`: print the dashboard instead of writing it.
        print(render_trends(ledger, suites=args.suite, window=args.window))
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "query": _cmd_query,
    "attack": _cmd_attack,
    "solve": _cmd_solve,
    "serve-bench": _cmd_serve_bench,
    "index-build": _cmd_index_build,
    "trace": _cmd_trace,
    "analyze": _cmd_analyze,
    "perf-check": _cmd_perf_check,
    "trend": _cmd_trend,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
