"""Synthetic POI generators.

Two spatial distributions cover the evaluation's needs:

- :func:`uniform_pois` — i.i.d. uniform over the space (worst case for
  index clustering, used by property tests),
- :func:`clustered_pois` — a mixture of Gaussian city clusters over a
  uniform rural background, the shape real POI datasets such as Sequoia
  exhibit.  Cluster centers, spreads, and weights are drawn from the seeded
  generator, so a (seed, size) pair fully determines the dataset.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.poi import POI
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.space import LocationSpace


def uniform_pois(
    count: int,
    space: LocationSpace | None = None,
    seed: int = 0,
    name_prefix: str = "poi",
) -> list[POI]:
    """``count`` POIs uniformly distributed over ``space``."""
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    space = space or LocationSpace.unit_square()
    rng = np.random.default_rng(seed)
    xs, ys = space.sample_arrays(count, rng)
    return [
        POI(i, Point(float(x), float(y)), f"{name_prefix}-{i}")
        for i, (x, y) in enumerate(zip(xs, ys, strict=True))
    ]


def clustered_pois(
    count: int,
    space: LocationSpace | None = None,
    clusters: int = 24,
    background_fraction: float = 0.15,
    seed: int = 0,
    name_prefix: str = "poi",
) -> list[POI]:
    """``count`` POIs from a clustered (city-like) distribution.

    ``background_fraction`` of the points are uniform noise; the remainder
    are split across ``clusters`` Gaussian blobs with random centers and
    scales.  Points falling outside the space are clamped to its bounds,
    keeping every location valid without distorting the cluster cores.
    """
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    if clusters < 1:
        raise ConfigurationError("need at least one cluster")
    if not 0.0 <= background_fraction <= 1.0:
        raise ConfigurationError("background_fraction must be in [0, 1]")
    space = space or LocationSpace.unit_square()
    rng = np.random.default_rng(seed)
    b = space.bounds

    background = int(round(count * background_fraction))
    clustered = count - background

    centers_x = rng.uniform(b.xmin, b.xmax, size=clusters)
    centers_y = rng.uniform(b.ymin, b.ymax, size=clusters)
    # City sizes follow a heavy-ish tail: a few big clusters, many small.
    weights = rng.pareto(1.5, size=clusters) + 1.0
    weights /= weights.sum()
    scales = rng.uniform(0.01, 0.05, size=clusters) * min(b.width, b.height)

    assignment = rng.choice(clusters, size=clustered, p=weights)
    xs = rng.normal(centers_x[assignment], scales[assignment])
    ys = rng.normal(centers_y[assignment], scales[assignment])

    bg_xs, bg_ys = space.sample_arrays(background, rng)
    xs = np.concatenate([xs, bg_xs])
    ys = np.concatenate([ys, bg_ys])
    xs = np.clip(xs, b.xmin, b.xmax)
    ys = np.clip(ys, b.ymin, b.ymax)

    order = rng.permutation(count)
    return [
        POI(i, Point(float(xs[j]), float(ys[j])), f"{name_prefix}-{i}")
        for i, j in enumerate(order)
    ]
