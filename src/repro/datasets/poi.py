"""Point-of-interest records owned by the LSP."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class POI:
    """One row of the LSP database: an id, a location, and a display name.

    ``poi_id`` is the stable integer identity the answer encoding transmits;
    the name stands in for the "other associated information" of Section 2.
    A non-finite coordinate is rejected here, at record-construction time,
    so no loader can smuggle a NaN into distance computations (NaN poisons
    every comparison it touches and silently corrupts kNN rankings).
    """

    poi_id: int
    location: Point
    name: str = ""

    def __post_init__(self) -> None:
        if self.poi_id < 0:
            raise ValueError("poi_id must be non-negative")
        if not self.location.is_finite:
            raise ConfigurationError(
                f"POI {self.poi_id} has non-finite coordinates "
                f"({self.location.x}, {self.location.y})"
            )

    def __str__(self) -> str:
        label = self.name or f"poi-{self.poi_id}"
        return f"{label}@({self.location.x:.4f}, {self.location.y:.4f})"
