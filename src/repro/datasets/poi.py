"""Point-of-interest records owned by the LSP."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class POI:
    """One row of the LSP database: an id, a location, and a display name.

    ``poi_id`` is the stable integer identity the answer encoding transmits;
    the name stands in for the "other associated information" of Section 2.
    """

    poi_id: int
    location: Point
    name: str = ""

    def __post_init__(self) -> None:
        if self.poi_id < 0:
            raise ValueError("poi_id must be non-negative")

    def __str__(self) -> str:
        label = self.name or f"poi-{self.poi_id}"
        return f"{label}@({self.location.x:.4f}, {self.location.y:.4f})"
