"""Streaming million-POI generators.

The list-returning generators in :mod:`repro.datasets.synthetic` top out
around the Sequoia scale; at 10^6+ POIs materializing every ``POI`` up
front doubles peak memory for no benefit, because the bulk loaders consume
entries once.  These generators yield POIs **chunk by chunk** — at most
``chunk_size`` live at a time besides whatever the consumer retains.

Determinism does not depend on chunking: randomness is always drawn in
fixed ``_RNG_BLOCK``-sized blocks — block ``b`` from
``np.random.default_rng([seed, b])`` — regardless of the requested
``chunk_size``, so POI ``i`` is a function of ``(kind, parameters, seed,
i)`` alone.  ``chunk_size`` only caps the emission batch; working storage
is ``O(max(chunk_size, _RNG_BLOCK))`` numpy scalars either way.
Distribution-level parameters (cluster centers, hotspot weights) are
drawn once from a dedicated ``default_rng([seed, 2**31])`` stream, never
from the per-block ones.

Three spatial shapes:

- :func:`stream_uniform` — i.i.d. uniform (index worst case),
- :func:`stream_clustered` — Gaussian city blobs over a uniform
  background, the shape of real POI data,
- :func:`stream_geo_skewed` — Zipf-weighted hotspot mixture: a handful of
  megacities absorb most of the mass, stressing indexes with extreme
  density contrast.

:func:`stream_pois` dispatches on a kind name (see
:data:`POI_STREAM_KINDS`) for CLI/benchmark plumbing.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.datasets.poi import POI
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.space import LocationSpace

POI_STREAM_KINDS = ("uniform", "clustered", "geo-skew")

DEFAULT_CHUNK_SIZE = 65_536

#: Fixed randomness granularity.  RNG streams are keyed by block index at
#: this size no matter what ``chunk_size`` the caller asks for, which is
#: what makes POI ``i`` invariant under re-chunking.
_RNG_BLOCK = 4_096


def _chunk_bounds(count: int, chunk_size: int) -> Iterator[tuple[int, int, int]]:
    """Yield ``(block_index, start, size)`` covering ``range(count)``.

    Blocks are cut at the fixed ``_RNG_BLOCK`` granularity; ``chunk_size``
    is validated by the callers but deliberately does not influence block
    boundaries (see the module docstring).
    """
    del chunk_size  # values must not depend on the caller's batching
    for c, start in enumerate(range(0, count, _RNG_BLOCK)):
        yield c, start, min(_RNG_BLOCK, count - start)


def _check(count: int, chunk_size: int) -> None:
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    if chunk_size < 1:
        raise ConfigurationError("chunk_size must be >= 1")


def _emit(
    xs: np.ndarray, ys: np.ndarray, start: int, name_prefix: str
) -> Iterator[POI]:
    for off, (x, y) in enumerate(zip(xs, ys, strict=True)):
        i = start + off
        yield POI(i, Point(float(x), float(y)), f"{name_prefix}-{i}")


def stream_uniform(
    count: int,
    space: LocationSpace | None = None,
    seed: int = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    name_prefix: str = "poi",
) -> Iterator[POI]:
    """``count`` uniform POIs, yielded lazily in ``chunk_size`` batches."""
    _check(count, chunk_size)
    space = space or LocationSpace.unit_square()
    for c, start, size in _chunk_bounds(count, chunk_size):
        rng = np.random.default_rng([seed, c])
        xs, ys = space.sample_arrays(size, rng)
        yield from _emit(xs, ys, start, name_prefix)


def stream_clustered(
    count: int,
    space: LocationSpace | None = None,
    clusters: int = 24,
    background_fraction: float = 0.15,
    seed: int = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    name_prefix: str = "poi",
) -> Iterator[POI]:
    """Streaming analogue of :func:`repro.datasets.synthetic.clustered_pois`.

    Cluster geometry is drawn once from a dedicated stream; each chunk
    then assigns its points to clusters (or the uniform background with
    probability ``background_fraction``) independently, so the global
    mixture is identical no matter the chunk size.
    """
    _check(count, chunk_size)
    if clusters < 1:
        raise ConfigurationError("need at least one cluster")
    if not 0.0 <= background_fraction <= 1.0:
        raise ConfigurationError("background_fraction must be in [0, 1]")
    space = space or LocationSpace.unit_square()
    b = space.bounds
    geo = np.random.default_rng([seed, 2**31])
    centers_x = geo.uniform(b.xmin, b.xmax, size=clusters)
    centers_y = geo.uniform(b.ymin, b.ymax, size=clusters)
    weights = geo.pareto(1.5, size=clusters) + 1.0
    weights /= weights.sum()
    scales = geo.uniform(0.01, 0.05, size=clusters) * min(b.width, b.height)

    for c, start, size in _chunk_bounds(count, chunk_size):
        rng = np.random.default_rng([seed, c])
        is_bg = rng.uniform(size=size) < background_fraction
        assignment = rng.choice(clusters, size=size, p=weights)
        xs = rng.normal(centers_x[assignment], scales[assignment])
        ys = rng.normal(centers_y[assignment], scales[assignment])
        bg_xs, bg_ys = space.sample_arrays(size, rng)
        xs = np.where(is_bg, bg_xs, xs)
        ys = np.where(is_bg, bg_ys, ys)
        xs = np.clip(xs, b.xmin, b.xmax)
        ys = np.clip(ys, b.ymin, b.ymax)
        yield from _emit(xs, ys, start, name_prefix)


def stream_geo_skewed(
    count: int,
    space: LocationSpace | None = None,
    hotspots: int = 8,
    zipf_exponent: float = 1.2,
    background_fraction: float = 0.05,
    seed: int = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    name_prefix: str = "poi",
) -> Iterator[POI]:
    """Zipf-weighted hotspot mixture: extreme density skew.

    Hotspot ``r`` (0-indexed by rank) receives weight proportional to
    ``(r + 1) ** -zipf_exponent``, so the top hotspot holds a constant
    fraction of all POIs regardless of ``count`` — the adversarial shape
    for uniform grids and fixed-width LSH buckets.  Hotspot spread also
    shrinks with rank: the densest city is also the most compact.
    """
    _check(count, chunk_size)
    if hotspots < 1:
        raise ConfigurationError("need at least one hotspot")
    if zipf_exponent <= 0.0:
        raise ConfigurationError("zipf_exponent must be positive")
    if not 0.0 <= background_fraction <= 1.0:
        raise ConfigurationError("background_fraction must be in [0, 1]")
    space = space or LocationSpace.unit_square()
    b = space.bounds
    geo = np.random.default_rng([seed, 2**31])
    centers_x = geo.uniform(b.xmin, b.xmax, size=hotspots)
    centers_y = geo.uniform(b.ymin, b.ymax, size=hotspots)
    ranks = np.arange(1, hotspots + 1, dtype=np.float64)
    weights = ranks**-zipf_exponent
    weights /= weights.sum()
    scales = (
        geo.uniform(0.008, 0.03, size=hotspots)
        * min(b.width, b.height)
        * ranks**-0.25
    )

    for c, start, size in _chunk_bounds(count, chunk_size):
        rng = np.random.default_rng([seed, c])
        is_bg = rng.uniform(size=size) < background_fraction
        assignment = rng.choice(hotspots, size=size, p=weights)
        xs = rng.normal(centers_x[assignment], scales[assignment])
        ys = rng.normal(centers_y[assignment], scales[assignment])
        bg_xs, bg_ys = space.sample_arrays(size, rng)
        xs = np.where(is_bg, bg_xs, xs)
        ys = np.where(is_bg, bg_ys, ys)
        xs = np.clip(xs, b.xmin, b.xmax)
        ys = np.clip(ys, b.ymin, b.ymax)
        yield from _emit(xs, ys, start, name_prefix)


def stream_pois(
    kind: str,
    count: int,
    space: LocationSpace | None = None,
    seed: int = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[POI]:
    """Dispatch a streaming generator by ``kind`` (CLI/benchmark entry)."""
    if kind == "uniform":
        return stream_uniform(count, space=space, seed=seed, chunk_size=chunk_size)
    if kind == "clustered":
        return stream_clustered(count, space=space, seed=seed, chunk_size=chunk_size)
    if kind == "geo-skew":
        return stream_geo_skewed(count, space=space, seed=seed, chunk_size=chunk_size)
    raise ConfigurationError(
        f"unknown POI stream kind {kind!r}; known: {list(POI_STREAM_KINDS)}"
    )
