"""The Sequoia evaluation dataset (surrogate and real-file loader).

The paper's experiments use the Sequoia benchmark: 62 556 California POIs
(coordinate + name), normalized into a square location space.  The original
distribution site is unreachable offline, so :func:`load_sequoia` builds a
deterministic synthetic surrogate with the same cardinality and a
California-like skew (most POIs concentrated in a modest number of dense
metropolitan clusters, the rest scattered).  The protocols never look at
the point distribution — only the query engines do — so this substitution
preserves every behaviour the evaluation measures; see DESIGN.md.

When a real Sequoia text file is available, :func:`load_sequoia_file`
parses and normalizes it into the same ``list[POI]`` shape.
"""

from __future__ import annotations

import math
from pathlib import Path

from repro.datasets.poi import POI
from repro.datasets.synthetic import clustered_pois
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.space import LocationSpace

#: Cardinality of the Sequoia California POI dataset reported in Section 8.1.
SEQUOIA_SIZE = 62_556


def load_sequoia(
    size: int = SEQUOIA_SIZE,
    space: LocationSpace | None = None,
    seed: int = 20180326,  # EDBT 2018 opening day; fixed for reproducibility
) -> list[POI]:
    """The synthetic Sequoia surrogate: ``size`` clustered California-like POIs.

    The default seed is fixed so every benchmark and example runs against
    the identical database.  ``size`` can be lowered for fast tests.
    """
    if size < 1:
        raise ConfigurationError("dataset size must be positive")
    return clustered_pois(
        count=size,
        space=space or LocationSpace.unit_square(),
        clusters=32,
        background_fraction=0.2,
        seed=seed,
        name_prefix="sequoia",
    )


def load_sequoia_file(path: str | Path, space: LocationSpace | None = None) -> list[POI]:
    """Parse a real Sequoia-format file and normalize it into ``space``.

    Expected line format: ``<x> <y> <name...>`` (whitespace-separated, name
    optional).  Coordinates are rescaled so the data's bounding box maps onto
    the target space, the normalization step of Section 8.1.
    """
    space = space or LocationSpace.unit_square()
    raw: list[tuple[float, float, str]] = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            parts = line.split()
            if not parts:
                continue
            if len(parts) < 2:
                raise ConfigurationError(f"{path}:{line_no}: expected '<x> <y> [name]'")
            try:
                x, y = float(parts[0]), float(parts[1])
            except ValueError as exc:
                raise ConfigurationError(f"{path}:{line_no}: bad coordinates") from exc
            if not (math.isfinite(x) and math.isfinite(y)):
                # float() happily parses "nan"/"inf"; a single such row
                # would poison the bounding box and every distance.
                raise ConfigurationError(
                    f"{path}:{line_no}: non-finite coordinates ({x}, {y})"
                )
            raw.append((x, y, " ".join(parts[2:])))
    if not raw:
        raise ConfigurationError(f"{path}: no POIs found")

    xs = [r[0] for r in raw]
    ys = [r[1] for r in raw]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    b = space.bounds
    pois = []
    for i, (x, y, name) in enumerate(raw):
        nx = b.xmin + (x - xmin) / xspan * b.width
        ny = b.ymin + (y - ymin) / yspan * b.height
        pois.append(POI(i, Point(nx, ny), name or f"sequoia-{i}"))
    return pois
