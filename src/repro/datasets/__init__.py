"""POI datasets.

The paper evaluates on the Sequoia dataset: 62 556 California POIs with
coordinates and names, normalized into a square space.  The original files
(chorochronos.datastories.org) are not available offline, so
:func:`~repro.datasets.sequoia.load_sequoia` produces a deterministic
synthetic surrogate of the same cardinality and a realistic skewed spatial
distribution (clustered cities over a uniform background) — see DESIGN.md's
substitution table.  Real Sequoia files, when present, can be loaded with
:func:`~repro.datasets.sequoia.load_sequoia_file`.
"""

from repro.datasets.poi import POI
from repro.datasets.sequoia import SEQUOIA_SIZE, load_sequoia, load_sequoia_file
from repro.datasets.streaming import (
    POI_STREAM_KINDS,
    stream_clustered,
    stream_geo_skewed,
    stream_pois,
    stream_uniform,
)
from repro.datasets.synthetic import clustered_pois, uniform_pois

__all__ = [
    "POI",
    "POI_STREAM_KINDS",
    "SEQUOIA_SIZE",
    "load_sequoia",
    "load_sequoia_file",
    "uniform_pois",
    "clustered_pois",
    "stream_uniform",
    "stream_clustered",
    "stream_geo_skewed",
    "stream_pois",
]
