"""Scripted malicious parties for exercising :mod:`repro.guard`.

Two adversary shapes, mirroring the protocol's trust boundaries:

:class:`CheatingLSP`
    Wraps an honest :class:`~repro.core.lsp.LSPServer` and tampers with
    the :class:`~repro.protocol.messages.EncryptedAnswer` it returns —
    each named deviation targets one check of the guard's inbound
    validation layer (vector length, ciphertext range, unit membership,
    level tag, plaintext structure).  ``rerandomize`` is the control
    case: by semantic security it changes every ciphertext byte yet must
    decrypt to the identical answer, so a guarded run is *provably
    harmless* rather than detected.

:class:`MaliciousChannel`
    A channel wrapper that mutates chosen payloads **and re-seals the
    envelope with a fresh, valid checksum**.  This models a cheating
    group member (or an in-path adversary) rather than line noise: the
    transport's CRC32 cannot object because the attacker computes it
    honestly over the forged payload, so only the protocol-level guard
    can catch the deviation.  ``replay=True`` additionally delivers a
    verbatim duplicate of every envelope — the transport's sequence
    numbers discard it, the second harmless case.

The tamper helpers (:func:`nan_location`, :func:`short_set`, ...) build
the mutator functions the tests script against specific rounds.
"""

from __future__ import annotations

import math
import random
from typing import Callable

from repro.core.lsp import LSPServer
from repro.crypto.paillier import Ciphertext
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.protocol.messages import (
    EncryptedAnswer,
    LocationSetUpload,
    Message,
    PositionAssignment,
)
from repro.protocol.metrics import CostLedger
from repro.transport.channel import Channel, Delivery, PerfectChannel
from repro.transport.envelope import Envelope, seal

#: ``mutate(link, payload) -> forged payload | None`` — None leaves the
#: transmission honest.
Mutator = Callable[[tuple[str, str], Message], Message | None]


class MaliciousChannel(Channel):
    """A channel that forges payloads with *valid* checksums.

    Parameters
    ----------
    mutate:
        Called for every transmission; returning a message replaces the
        payload and the envelope is re-sealed, so the forgery passes the
        transport's integrity check.
    inner:
        The underlying medium (default perfect — the attack is the only
        fault).
    replay:
        Deliver a verbatim duplicate of every envelope alongside the
        original, emulating a record-and-replay adversary.
    """

    def __init__(
        self,
        mutate: Mutator | None = None,
        inner: Channel | None = None,
        replay: bool = False,
    ) -> None:
        self.mutate = mutate
        self.inner = inner if inner is not None else PerfectChannel()
        self.replay = replay
        self.forged = 0
        self.replayed = 0

    def killed_party(self, link: tuple[str, str]) -> str | None:
        """Delegate crash bookkeeping to the wrapped channel."""
        return self.inner.killed_party(link)

    def revive(self, party: str) -> None:
        """Delegate revival to the wrapped channel."""
        self.inner.revive(party)

    def transmit(self, envelope: Envelope) -> list[Delivery]:
        """Apply the mutator (re-sealing the envelope) and optional replay.

        A forged payload gets a fresh, *valid* checksum so the transport
        layer accepts it — only the protocol guard can catch it.
        """
        if self.mutate is not None:
            forged = self.mutate(envelope.link, envelope.payload)
            if forged is not None:
                envelope = seal(envelope.link, envelope.seq, forged)
                self.forged += 1
        deliveries = self.inner.transmit(envelope)
        if self.replay and deliveries:
            self.replayed += len(deliveries)
            deliveries = deliveries + [
                Delivery(d.envelope, d.latency_seconds) for d in deliveries
            ]
        return deliveries


# --------------------------------------------------------------- member side


def _upload_mutator(
    user_id: int, forge: Callable[[LocationSetUpload], LocationSetUpload]
) -> Mutator:
    def mutate(link: tuple[str, str], payload: Message) -> Message | None:
        if isinstance(payload, LocationSetUpload) and payload.user_id == user_id:
            return forge(payload)
        return None

    return mutate


def nan_location(user_id: int) -> Mutator:
    """Member ``user_id`` hides a NaN coordinate in its location set."""

    def forge(upload: LocationSetUpload) -> LocationSetUpload:
        poisoned = (Point(math.nan, 0.5),) + upload.locations[1:]
        return LocationSetUpload(upload.user_id, poisoned)

    return _upload_mutator(user_id, forge)


def outside_location(user_id: int) -> Mutator:
    """Member ``user_id`` uploads a location outside the agreed space."""

    def forge(upload: LocationSetUpload) -> LocationSetUpload:
        poisoned = (Point(2.5, -1.5),) + upload.locations[1:]
        return LocationSetUpload(upload.user_id, poisoned)

    return _upload_mutator(user_id, forge)


def short_set(user_id: int) -> Mutator:
    """Member ``user_id`` pads with fewer dummies than the protocol requires.

    This is the laziness-for-privacy trade the guard must refuse: a short
    set weakens every *other* member's Privacy-I guarantee.
    """

    def forge(upload: LocationSetUpload) -> LocationSetUpload:
        return LocationSetUpload(upload.user_id, upload.locations[:-1])

    return _upload_mutator(user_id, forge)


def duplicate_user_id(user_id: int, victim_id: int = 0) -> Mutator:
    """Member ``user_id`` impersonates ``victim_id`` in its upload."""

    def forge(upload: LocationSetUpload) -> LocationSetUpload:
        return LocationSetUpload(victim_id, upload.locations)

    return _upload_mutator(user_id, forge)


def corrupt_position(user_id: int, position: int = 10**6) -> Mutator:
    """Forge the coordinator's slot assignment to ``user_id`` out of range."""

    def mutate(link: tuple[str, str], payload: Message) -> Message | None:
        if isinstance(payload, PositionAssignment) and link[1] == f"user:{user_id}":
            return PositionAssignment(position)
        return None

    return mutate


# ------------------------------------------------------------------ LSP side

#: The scripted LSP deviations, by name.  All but ``rerandomize`` must be
#: detected by a guarded coordinator; ``rerandomize`` must be harmless.
LSP_DEVIATIONS = (
    "extra_ciphertext",
    "empty_answer",
    "out_of_range_value",
    "non_unit_value",
    "wrong_level",
    "garbage_plaintext",
    "rerandomize",
)


class CheatingLSP:
    """An LSP that answers honestly, then tampers with the answer.

    Delegates all computation to ``inner`` and rewrites the returned
    :class:`~repro.protocol.messages.EncryptedAnswer` according to
    ``deviation`` (one of :data:`LSP_DEVIATIONS`).  Duck-types the
    :class:`~repro.core.lsp.LSPServer` surface the runners touch.
    """

    def __init__(self, inner: LSPServer, deviation: str, seed: int = 0) -> None:
        if deviation not in LSP_DEVIATIONS:
            raise ConfigurationError(
                f"unknown deviation {deviation!r}; known: {list(LSP_DEVIATIONS)}"
            )
        self.inner = inner
        self.deviation = deviation
        self._rng = random.Random(seed)

    @property
    def space(self):
        """The wrapped LSP's data space."""
        return self.inner.space

    @property
    def stats(self):
        """The wrapped LSP's query statistics."""
        return self.inner.stats

    def answer_group_query(self, request, uploads, ledger: CostLedger):
        """Answer honestly via the wrapped LSP, then tamper (level s=1)."""
        answer = self.inner.answer_group_query(request, uploads, ledger)
        return self._tamper(answer, request, s=1)

    def answer_group_query_opt(self, request, uploads, ledger: CostLedger):
        """Answer honestly via the wrapped LSP, then tamper (level s=2)."""
        answer = self.inner.answer_group_query_opt(request, uploads, ledger)
        return self._tamper(answer, request, s=2)

    def _tamper(self, answer: EncryptedAnswer, request, s: int) -> EncryptedAnswer:
        pk = request.public_key
        cts = list(answer.ciphertexts)
        if self.deviation == "extra_ciphertext":
            cts.append(cts[0])
        elif self.deviation == "empty_answer":
            cts = []
        elif self.deviation == "out_of_range_value":
            # Congruent to a valid ciphertext, but not a canonical residue.
            cts[0] = Ciphertext(
                cts[0].value + pk.ciphertext_modulus(s), s, pk
            )
        elif self.deviation == "non_unit_value":
            # gcd(N, N^{s+1}) = N: outside Z*, decryption is undefined.
            cts[0] = Ciphertext(pk.n, s, pk)
        elif self.deviation == "wrong_level":
            cts[0] = Ciphertext(cts[0].value, s + 1, pk)
        elif self.deviation == "garbage_plaintext":
            # A well-formed ciphertext of a structurally impossible answer:
            # its count header claims k + 1 POIs.
            cts[0] = pk.encrypt(request.k + 1, s=s, rng=self._rng)
        elif self.deviation == "rerandomize":
            cts = [pk.rerandomize(c, self._rng) for c in cts]
        return EncryptedAnswer(tuple(cts))
