"""Attack implementations the protocol defends against.

Currently the inequality attack of Section 5.1: n - 1 colluding users
exploit the ranking of the returned POIs to carve out the feasible region
of the remaining user's location.
"""

from repro.attacks.inequality import AttackResult, inequality_attack

__all__ = ["AttackResult", "inequality_attack"]
