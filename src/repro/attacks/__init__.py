"""Attack implementations the protocol defends against.

- The inequality attack of Section 5.1: n - 1 colluding users exploit the
  ranking of the returned POIs to carve out the feasible region of the
  remaining user's location.
- Scripted malicious parties (:mod:`repro.attacks.malicious`): a cheating
  LSP and cheating group members whose deviations the :mod:`repro.guard`
  layer must detect or prove harmless.
"""

from repro.attacks.inequality import AttackResult, inequality_attack
from repro.attacks.malicious import (
    LSP_DEVIATIONS,
    CheatingLSP,
    MaliciousChannel,
    corrupt_position,
    duplicate_user_id,
    nan_location,
    outside_location,
    short_set,
)

__all__ = [
    "AttackResult",
    "CheatingLSP",
    "LSP_DEVIATIONS",
    "MaliciousChannel",
    "corrupt_position",
    "duplicate_user_id",
    "inequality_attack",
    "nan_location",
    "outside_location",
    "short_set",
]
