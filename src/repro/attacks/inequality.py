"""The inequality attack of Section 5.1, from the colluders' perspective.

Given the ranked answer ``p_1, ..., p_t`` and the n - 1 known locations,
the colluding users know that the unknown location ``l`` must satisfy

    F(p_i, {l} + known) <= F(p_{i+1}, {l} + known)   for 1 <= i < t,

because F is evaluated over the full group and the returned POIs are in
ascending aggregate order.  The solution region of these t - 1 inequalities
is where the victim can hide.  This module estimates that region by
Monte-Carlo (the same machinery the LSP-side sanitation uses, but run by
the adversary) and reports its relative size theta-hat, which tests and
the demo example compare against the privacy parameter theta_0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.distance import distance_matrix
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.space import LocationSpace
from repro.gnn.aggregate import Aggregate


@dataclass(frozen=True)
class AttackResult:
    """Outcome of one inequality attack against one target user."""

    theta_estimate: float
    samples_inside: int
    total_samples: int
    feasible_box: Rect | None
    contains_target: bool | None

    def succeeded(self, theta0: float) -> bool:
        """Paper semantics: the attack succeeds when the region is <= theta_0."""
        return self.theta_estimate <= theta0


def inequality_attack(
    ranked_answer: Sequence[Point],
    known_locations: Sequence[Point],
    space: LocationSpace,
    aggregate: Aggregate,
    n_samples: int = 20_000,
    rng: np.random.Generator | None = None,
    true_target: Point | None = None,
) -> AttackResult:
    """Estimate the feasible region of the victim's location.

    Parameters
    ----------
    ranked_answer:
        The POI locations as returned (already sanitized or not), in rank
        order.
    known_locations:
        The colluders' own locations (n - 1 of them; may be empty when
        n = 1, in which case the attack degenerates to the kNN ordering
        constraint).
    true_target:
        Optional ground truth; when given, the result reports whether the
        estimated region contains it (it always should — the attack's
        inequalities are sound).
    """
    if not ranked_answer:
        raise ConfigurationError("cannot attack an empty answer")
    rng = rng or np.random.default_rng()
    xs, ys = space.sample_arrays(n_samples, rng)
    inside = _feasible_mask(xs, ys, ranked_answer, known_locations, aggregate)
    count = int(inside.sum())
    feasible_box = None
    if count:
        feasible_box = Rect(
            float(xs[inside].min()),
            float(ys[inside].min()),
            float(xs[inside].max()),
            float(ys[inside].max()),
        )
    contains = None
    if true_target is not None:
        contains = _point_feasible(true_target, ranked_answer, known_locations, aggregate)
    return AttackResult(
        theta_estimate=count / n_samples,
        samples_inside=count,
        total_samples=n_samples,
        feasible_box=feasible_box,
        contains_target=contains,
    )


def _feasible_mask(
    xs: np.ndarray,
    ys: np.ndarray,
    ranked_answer: Sequence[Point],
    known_locations: Sequence[Point],
    aggregate: Aggregate,
) -> np.ndarray:
    """Boolean mask of sample locations satisfying every ranking inequality."""
    sample_dists = distance_matrix(xs, ys, list(ranked_answer))
    if aggregate.decomposable and known_locations:
        partials = np.array(
            [
                aggregate.partial(loc.distance_to(p) for loc in known_locations)  # type: ignore[misc]
                for p in ranked_answer
            ]
        )
        values = aggregate.merge(sample_dists, partials[None, :])  # type: ignore[misc]
    elif not known_locations:
        values = sample_dists
    else:
        values = np.empty_like(sample_dists)
        for j, p in enumerate(ranked_answer):
            rows = np.empty((len(xs), len(known_locations) + 1))
            rows[:, 0] = sample_dists[:, j]
            for idx, loc in enumerate(known_locations):
                rows[:, idx + 1] = loc.distance_to(p)
            values[:, j] = aggregate.combine_rows(rows)
    if values.shape[1] == 1:
        return np.ones(len(xs), dtype=bool)
    return np.all(values[:, :-1] <= values[:, 1:], axis=1)


def _point_feasible(
    point: Point,
    ranked_answer: Sequence[Point],
    known_locations: Sequence[Point],
    aggregate: Aggregate,
) -> bool:
    """Whether one specific location satisfies the attack inequalities."""
    group = [point, *known_locations]
    costs = [aggregate(q.distance_to(p) for q in group) for p in ranked_answer]
    return all(costs[i] <= costs[i + 1] for i in range(len(costs) - 1))
