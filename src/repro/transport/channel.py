"""Channels: the (possibly unreliable) medium envelopes travel through.

A channel turns one transmission into zero or more deliveries.
:class:`PerfectChannel` is today's in-memory idealization — every envelope
arrives exactly once, instantly.  :class:`FaultyChannel` interprets a
seeded :class:`~repro.transport.faults.FaultPlan`: it drops, duplicates,
corrupts, delays, and reorders copies per link, and silences parties whose
scripted ``kill`` threshold has passed.  Reordered copies are held back
and released on the link's *next* transmission, which in the synchronous
simulation is exactly "this packet overtook the retransmission".
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass

from repro.transport.envelope import Envelope
from repro.transport.faults import FaultPlan, tamper


@dataclass(frozen=True, slots=True)
class Delivery:
    """One envelope copy arriving at the receiver after ``latency_seconds``."""

    envelope: Envelope
    latency_seconds: float = 0.0


class Channel:
    """Base channel: transmit an envelope, get back the arriving copies."""

    def transmit(self, envelope: Envelope) -> list[Delivery]:
        raise NotImplementedError

    def killed_party(self, link: tuple[str, str]) -> str | None:
        """The dead endpoint of a link, if its silence is a scripted death."""
        return None

    def revive(self, party: str) -> None:
        """Forget a scripted death (the group regrouped without the party)."""


class PerfectChannel(Channel):
    """The zero-fault medium: every envelope arrives once, instantly."""

    def transmit(self, envelope: Envelope) -> list[Delivery]:
        return [Delivery(envelope)]


class FaultyChannel(Channel):
    """A deterministic lossy medium driven by a :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._sent: defaultdict[str, int] = defaultdict(int)
        self._holdback: defaultdict[tuple[str, str], list[Delivery]] = defaultdict(
            list
        )
        self._revived: set[str] = set()

    def _is_dead(self, party: str) -> bool:
        if party in self._revived or party not in self.plan.kill:
            return False
        return self._sent[party] >= self.plan.kill[party]

    def killed_party(self, link: tuple[str, str]) -> str | None:
        for party in link:
            if self._is_dead(party):
                return party
        return None

    def revive(self, party: str) -> None:
        self._revived.add(party)

    def transmit(self, envelope: Envelope) -> list[Delivery]:
        link = envelope.link
        sender, receiver = link
        sender_dead = self._is_dead(sender)
        if not sender_dead:
            self._sent[sender] += 1
        if sender_dead or self._is_dead(receiver):
            # A dead endpoint swallows everything, stragglers included.
            self._holdback.pop(link, None)
            return []
        # Held-back copies from earlier transmissions arrive alongside.
        arrivals = self._holdback.pop(link, [])
        faults = self.plan.for_link(link)
        copies = 2 if self._rng.random() < faults.duplicate else 1
        for _ in range(copies):
            if self._rng.random() < faults.drop:
                continue
            copy = envelope
            if self._rng.random() < faults.corrupt:
                copy = Envelope(
                    link,
                    envelope.seq,
                    tamper(envelope.payload, self._rng),
                    envelope.checksum,
                )
            latency = faults.latency_seconds
            if faults.latency_jitter_seconds:
                latency += self._rng.random() * faults.latency_jitter_seconds
            delivery = Delivery(copy, latency)
            if self._rng.random() < faults.reorder:
                self._holdback[link].append(delivery)
            else:
                arrivals.append(delivery)
        return arrivals
