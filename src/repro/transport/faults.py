"""Fault plans: seeded, per-link fault rates plus scripted party deaths.

A :class:`FaultPlan` is pure configuration — the :class:`~repro.transport
.channel.FaultyChannel` interprets it with a single seeded RNG, so a plan
plus a seed replays the exact same fault sequence every run.  ``kill``
scripts permanent mid-protocol deaths ("user 2 dies after sending 1
message"), the failure mode :class:`~repro.transport.session
.ResilientSession` regroups around.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields, is_dataclass, replace
from types import MappingProxyType
from typing import Mapping

from repro.crypto.paillier import Ciphertext
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.protocol.messages import GenericMessage, Message

_RATE_FIELDS = ("drop", "duplicate", "reorder", "corrupt")


@dataclass(frozen=True, slots=True)
class LinkFaults:
    """Per-link fault probabilities and latency model.

    Each rate is the independent per-copy probability of that fault;
    ``latency_seconds`` (+ a uniform jitter) is charged to the simulated
    network clock per delivered copy.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    corrupt: float = 0.0
    latency_seconds: float = 0.0
    latency_jitter_seconds: float = 0.0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(f"{name} rate must be in [0, 1)")
        if self.latency_seconds < 0 or self.latency_jitter_seconds < 0:
            raise ConfigurationError("latencies must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """Everything a :class:`FaultyChannel` needs to misbehave on schedule.

    Attributes
    ----------
    default:
        Fault rates applied to every link without an explicit override.
    links:
        Per-directed-link overrides, keyed by ``(sender, receiver)`` party
        names (e.g. ``("user:2", "lsp")``).
    seed:
        RNG seed; the full fault sequence is a pure function of it.
    kill:
        Scripted deaths: ``party -> m`` kills the party permanently after
        it has sent ``m`` messages (``0`` = dead from the start).
    """

    default: LinkFaults = field(default_factory=LinkFaults)
    links: Mapping[tuple[str, str], LinkFaults] = field(
        default_factory=lambda: MappingProxyType({})
    )
    seed: int = 0
    kill: Mapping[str, int] = field(default_factory=lambda: MappingProxyType({}))

    def __post_init__(self) -> None:
        for party, after in self.kill.items():
            if after < 0:
                raise ConfigurationError(
                    f"kill threshold for {party!r} must be non-negative"
                )

    @classmethod
    def uniform(
        cls,
        rate: float,
        seed: int = 0,
        latency_seconds: float = 0.0,
        **overrides,
    ) -> "FaultPlan":
        """All four fault kinds at the same rate on every link."""
        faults = LinkFaults(
            drop=rate,
            duplicate=rate,
            reorder=rate,
            corrupt=rate,
            latency_seconds=latency_seconds,
        )
        return cls(default=faults, seed=seed, **overrides)

    def for_link(self, link: tuple[str, str]) -> LinkFaults:
        """The fault rates governing one directed link."""
        return self.links.get(link, self.default)


def tamper(message: Message, rng: random.Random) -> Message:
    """A transit-damaged copy of ``message`` (same wire size, wrong bytes).

    Flips a low bit in the most safety-critical field available — a
    ciphertext value (the garbage-decryption hazard the checksum exists
    for), a location coordinate, or a small integer — and falls back to an
    opaque placeholder for messages with no recognized field.  The result
    always fingerprint-differs from the original, so the receiver's
    checksum verification is guaranteed to catch it.
    """
    corrupted = _tamper_fields(message, rng)
    if corrupted is not None:
        return corrupted
    return GenericMessage(kind="garbled", size=message.byte_size)


def _holds_ciphertext(value) -> bool:
    if isinstance(value, Ciphertext):
        return True
    return isinstance(value, tuple) and any(
        isinstance(item, Ciphertext) for item in value
    )


def _tamper_fields(message, rng: random.Random):
    if not is_dataclass(message):
        return None
    # Damage ciphertext-bearing fields first: they are the fields whose
    # corruption would otherwise decrypt to garbage answers.
    candidates = sorted(
        fields(message),
        key=lambda f: not _holds_ciphertext(getattr(message, f.name)),
    )
    for f in candidates:
        value = getattr(message, f.name)
        damaged = _damage_value(value, rng)
        if damaged is not None:
            return replace(message, **{f.name: damaged})
    return None


def _damage_value(value, rng: random.Random):
    """A corrupted stand-in for one field value, or None if unsupported."""
    if isinstance(value, Ciphertext):
        modulus = value.public_key.ciphertext_modulus(value.s)
        flipped = value.value ^ (1 << rng.randrange(8))
        if flipped >= modulus:
            flipped = value.value ^ 1 if value.value ^ 1 < modulus else value.value - 1
        return Ciphertext(value=flipped, s=value.s, public_key=value.public_key)
    if isinstance(value, Point):
        return Point(value.x + 1.0, value.y)
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value ^ 1
    if isinstance(value, float):
        return value + 1.0
    if isinstance(value, tuple) and value:
        index = rng.randrange(len(value))
        damaged = _damage_value(value[index], rng)
        if damaged is None:
            return None
        return value[:index] + (damaged,) + value[index + 1 :]
    if is_dataclass(value) and not isinstance(value, type):
        return _tamper_fields(value, rng)
    return None
