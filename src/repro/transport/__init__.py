"""Fault-injecting transport: channels, envelopes, retries, resilience.

The protocol runners default to a perfect in-memory network (the paper's
idealization).  This package makes the network a first-class, breakable
component: seeded fault injection per link (:mod:`~repro.transport.faults`),
checksummed sequence-numbered envelopes (:mod:`~repro.transport.envelope`),
a retry/timeout/backoff engine (:mod:`~repro.transport.transport`), and a
session wrapper that regroups around dead members
(:mod:`~repro.transport.session`).

``ResilientSession`` is re-exported lazily — its module imports the core
runners, which themselves import this package's delivery hook.
"""

from __future__ import annotations

from repro.transport.channel import Channel, Delivery, FaultyChannel, PerfectChannel
from repro.transport.envelope import (
    ENVELOPE_OVERHEAD_BYTES,
    Envelope,
    Nack,
    payload_checksum,
    payload_fingerprint,
    seal,
)
from repro.transport.faults import FaultPlan, LinkFaults, tamper
from repro.transport.retry import RetryPolicy
from repro.transport.transport import (
    NETWORK,
    Transport,
    TransportStats,
    party_role,
    send,
    user_index,
)

__all__ = [
    "Channel",
    "Delivery",
    "ENVELOPE_OVERHEAD_BYTES",
    "Envelope",
    "FaultPlan",
    "FaultyChannel",
    "LinkFaults",
    "Nack",
    "NETWORK",
    "PerfectChannel",
    "ResilientSession",
    "RetryPolicy",
    "Transport",
    "TransportStats",
    "party_role",
    "payload_checksum",
    "payload_fingerprint",
    "seal",
    "send",
    "tamper",
    "user_index",
]


def __getattr__(name: str):
    # Deferred: repro.transport.session -> repro.core.session -> the
    # runners -> repro.transport.transport would otherwise be circular.
    if name == "ResilientSession":
        from repro.transport.session import ResilientSession

        return ResilientSession
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
