"""A query session that survives an unreliable network.

:class:`ResilientSession` extends :class:`~repro.core.session.QuerySession`
with a transport: every protocol message of every query rides the
configured channel behind the retry/backoff machinery, so the session's
cost totals include the retransmission traffic reliability actually costs.

When a group member dies mid-protocol (a scripted ``kill`` in the fault
plan), the round aborts with :class:`~repro.errors.GroupMemberLostError`.
With ``allow_regroup=True`` the session instead re-runs the round with the
surviving n−1 users under a *fresh* per-round seed — fresh dummy locations
and a fresh placement plan, so the re-run leaks nothing about the aborted
round and the Privacy-I/II parameters (d dummies per user, ≥ δ candidate
queries) hold exactly as they would for a group of n−1 from the start.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.result import ProtocolResult
from repro.core.session import _RUNNERS, QuerySession
from repro.errors import GroupMemberLostError
from repro.geometry.point import Point
from repro.obs import maybe_span
from repro.transport.channel import Channel, PerfectChannel
from repro.transport.retry import RetryPolicy
from repro.transport.transport import Transport, TransportStats

#: Seed offset between regroup rounds of one query — any constant works,
#: it only has to make the re-run's randomness independent of the abort.
_REGROUP_SEED_STRIDE = 7919


@dataclass
class ResilientSession(QuerySession):
    """A :class:`QuerySession` whose messages cross a real (faulty) channel.

    Parameters beyond the base session:

    channel:
        The medium — :class:`~repro.transport.channel.PerfectChannel`
        (default) or a seeded :class:`~repro.transport.channel
        .FaultyChannel`.
    policy:
        Retry/timeout/backoff policy applied to every message.
    allow_regroup:
        Re-run a round with the survivors when a member dies, instead of
        surfacing :class:`~repro.errors.GroupMemberLostError`.
    """

    channel: Channel = field(default_factory=PerfectChannel)
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    allow_regroup: bool = False
    regroups: int = 0
    transport: Transport = field(init=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        self.transport = Transport(self.channel, self.policy, obs=self.obs)

    @property
    def transport_stats(self) -> TransportStats:
        """Cumulative reliability counters across the session's queries."""
        return self.transport.stats

    def query(
        self, locations: Sequence[Point], seed: int | None = None
    ) -> ProtocolResult:
        """One group query over the channel, regrouping if allowed.

        ``seed`` overrides the query's randomness seed, as in
        :meth:`QuerySession.query`.  Raises a
        :class:`~repro.errors.TransportError` subclass when the network
        defeats the retry budget — never a wrong answer.
        """
        runner = _RUNNERS[self.protocol]
        survivors = list(locations)
        base_seed = self.seed + self.totals.queries if seed is None else seed
        round_number = 0
        while True:
            round_seed = base_seed + _REGROUP_SEED_STRIDE * round_number
            try:
                with maybe_span(
                    self.obs, "session.query", protocol=self.protocol,
                    n=len(survivors), round_number=round_number,
                ):
                    result = runner(
                        self.lsp,
                        survivors,
                        self.config,
                        seed=round_seed,
                        nonce_pool=self.nonce_pool,
                        transport=self.transport,
                        guard=self.guard,
                        obs=self.obs,
                    )
            except GroupMemberLostError as lost:
                if (
                    not self.allow_regroup
                    or len(survivors) <= 1
                    or not 0 <= lost.user_index < len(survivors)
                ):
                    raise
                # The dead member leaves; survivors renumber 0..n-2.  The
                # re-run draws fresh dummies and a fresh placement plan.
                survivors.pop(lost.user_index)
                self.channel.revive(lost.party)
                self.regroups += 1
                round_number += 1
                continue
            self.totals.add(result)
            self._remember(result)
            return result
