"""Reliable delivery over unreliable channels.

:class:`Transport` is the layer the protocol runners talk to when a
``transport=`` is supplied: it wraps each protocol message in a
sequence-numbered, checksummed :class:`~repro.transport.envelope.Envelope`,
pushes it through the configured channel, and drives the
:class:`~repro.transport.retry.RetryPolicy` until one intact copy is
accepted — discarding duplicates and stale stragglers by sequence number
and answering corrupted copies with a NACK.  Every transmitted copy and
every NACK is recorded in the run's :class:`~repro.protocol.metrics
.CostLedger`, so the benchmark's communication numbers include the cost of
reliability; simulated waiting (latency, timeouts, backoff) accrues under
the ledger's ``"network"`` clock, leaving the paper's user/LSP CPU costs
untouched.

Party endpoints are strings — ``"coordinator"``, ``"lsp"``, ``"user:3"``
— whose role prefix maps onto the ledger's aggregated role accounting.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.errors import (
    ConfigurationError,
    GroupMemberLostError,
    RetryExhaustedError,
    ShardLostError,
    TransportError,
)
from repro.obs import Observability, maybe_span
from repro.protocol.messages import Message
from repro.protocol.metrics import COORDINATOR, LSP, USER, CostLedger
from repro.transport.channel import Channel, PerfectChannel
from repro.transport.envelope import Nack, seal
from repro.transport.retry import RetryPolicy

#: Ledger role that accrues simulated network waiting time.
NETWORK = "network"


def party_role(party: str) -> str:
    """Map a party endpoint onto its ledger accounting role."""
    role = party.split(":", 1)[0]
    if role not in (USER, COORDINATOR, LSP):
        raise ConfigurationError(f"unknown party endpoint {party!r}")
    return role


def user_index(party: str) -> int | None:
    """The user number of a ``user:i`` endpoint, else None."""
    prefix, _, index = party.partition(":")
    if prefix == USER and index.isdigit():
        return int(index)
    return None


def shard_index(party: str) -> int | None:
    """The shard number of an LSP endpoint, else None.

    The single-provider endpoint ``"lsp"`` is shard 0; a cluster names its
    shards ``"lsp:i"``.
    """
    prefix, _, index = party.partition(":")
    if prefix != LSP:
        return None
    if not index:
        return 0
    if index.isdigit():
        return int(index)
    return None


@dataclass
class TransportStats:
    """Cumulative reliability counters across a transport's lifetime."""

    messages: int = 0
    attempts: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    duplicates_discarded: int = 0
    stale_discarded: int = 0
    corrupt_rejected: int = 0
    nacks_sent: int = 0
    latency_seconds: float = 0.0
    backoff_seconds: float = 0.0

    def summary(self) -> str:
        return (
            f"{self.messages} messages in {self.attempts} attempts "
            f"({self.retransmissions} retransmissions, {self.timeouts} timeouts, "
            f"{self.duplicates_discarded} duplicates discarded, "
            f"{self.corrupt_rejected} corrupt rejected)"
        )


@dataclass
class Transport:
    """Sequence numbering + retry loop over one channel, for all links."""

    channel: Channel = field(default_factory=PerfectChannel)
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    stats: TransportStats = field(default_factory=TransportStats)
    _next_seq: defaultdict = field(default_factory=lambda: defaultdict(int))
    _accepted: defaultdict = field(default_factory=lambda: defaultdict(set))
    obs: Observability | None = None

    def deliver(
        self, ledger: CostLedger, sender: str, receiver: str, message: Message
    ) -> Message:
        """Reliably deliver one message; returns the receiver's copy.

        Raises :class:`~repro.errors.GroupMemberLostError` when the failed
        endpoint is a scripted-dead group member,
        :class:`~repro.errors.ShardLostError` when it is a scripted-dead
        LSP shard, otherwise :class:`~repro.errors.RetryExhaustedError`
        (a dead *channel*) after the policy's attempt budget.
        """
        with maybe_span(
            self.obs, "transport.send", link=f"{sender}->{receiver}"
        ) as span:
            return self._deliver(ledger, sender, receiver, message, span)

    def _deliver(
        self,
        ledger: CostLedger,
        sender: str,
        receiver: str,
        message: Message,
        span=None,
    ) -> Message:
        link = (sender, receiver)
        seq = self._next_seq[link]
        self._next_seq[link] += 1
        envelope = seal(link, seq, message)
        sender_role, receiver_role = party_role(sender), party_role(receiver)
        self.stats.messages += 1
        if self.obs is not None:
            self.obs.count("transport.messages")
        budget = self.policy.retry_budget
        for attempt in range(1, self.policy.max_attempts + 1):
            if attempt > 1:
                if budget is not None and self.stats.retransmissions >= budget:
                    # The *session-wide* retransmission budget is spent:
                    # give up on this delivery now instead of letting every
                    # message re-pay the full per-message attempt loop
                    # against a peer that is already failing.
                    if self.obs is not None:
                        self.obs.count("transport.retry_budget_exhausted")
                    raise self._budget_exhausted(link, attempt - 1, budget)
                self.stats.retransmissions += 1
                wait = self.policy.backoff(attempt - 1, link, seq)
                self.stats.backoff_seconds += wait
                ledger.times[NETWORK] += wait
                if self.obs is not None:
                    self.obs.count("transport.retries")
                    self.obs.count("transport.backoff_seconds", wait)
            self.stats.attempts += 1
            ledger.record(sender_role, receiver_role, envelope)
            accepted = self._receive(
                ledger, envelope, self.channel.transmit(envelope), receiver_role,
                sender_role,
            )
            if accepted is not None:
                if span is not None:
                    span.set(attempts=attempt, bytes=envelope.byte_size)
                return accepted
            self.stats.timeouts += 1
            ledger.times[NETWORK] += self.policy.timeout_seconds
        if self.obs is not None:
            self.obs.count("transport.exhausted")
        dead = self.channel.killed_party(link)
        if dead is not None:
            lost = user_index(dead)
            if lost is not None:
                raise GroupMemberLostError(dead, lost, self.policy.max_attempts)
            shard = shard_index(dead)
            if shard is not None:
                # A dead *party* on the provider side, not a dead channel:
                # failover (not regroup, not blind retry) is the cure.
                raise ShardLostError(dead, shard, link, self.policy.max_attempts)
        raise RetryExhaustedError(link, self.policy.max_attempts)

    def _budget_exhausted(
        self, link: tuple[str, str], attempts: int, budget: int
    ) -> TransportError:
        """The typed error for a delivery killed by the retry budget.

        Mirrors the attempt-exhaustion taxonomy — a scripted-dead group
        member or LSP shard keeps its specific type so failover/regroup
        logic behaves identically — with the budget accounting attached.
        """
        spent = self.stats.retransmissions
        dead = self.channel.killed_party(link)
        error: TransportError
        if dead is not None and user_index(dead) is not None:
            error = GroupMemberLostError(dead, user_index(dead), attempts)
        elif dead is not None and shard_index(dead) is not None:
            error = ShardLostError(dead, shard_index(dead), link, attempts)
        else:
            return RetryExhaustedError(
                link, attempts, retries_spent=spent, retry_budget=budget
            )
        error.retries_spent = spent
        error.retry_budget = budget
        return error

    def _receive(
        self,
        ledger: CostLedger,
        expected,
        deliveries,
        receiver_role: str,
        sender_role: str,
    ) -> Message | None:
        """Receiver side of one attempt window; returns the accepted payload."""
        accepted: Message | None = None
        for delivery in deliveries:
            self.stats.latency_seconds += delivery.latency_seconds
            ledger.times[NETWORK] += delivery.latency_seconds
            copy = delivery.envelope
            if not copy.intact:
                # Damaged in transit: reject loudly, ask for a resend.
                self.stats.corrupt_rejected += 1
                self.stats.nacks_sent += 1
                if self.obs is not None:
                    self.obs.count("transport.corrupt_rejected")
                ledger.record(receiver_role, sender_role, Nack(copy.seq))
                continue
            if copy.seq in self._accepted[copy.link]:
                self.stats.duplicates_discarded += 1
                continue
            if copy.seq != expected.seq:
                # A straggler for a message whose delivery already gave up.
                self.stats.stale_discarded += 1
                continue
            self._accepted[copy.link].add(copy.seq)
            accepted = copy.payload
        return accepted


def send(
    transport: Transport | None,
    ledger: CostLedger,
    sender: str,
    receiver: str,
    message: Message,
) -> Message:
    """Runner-side hook: one protocol message from ``sender`` to ``receiver``.

    Without a transport this is exactly the historical in-memory behavior —
    one ledger record, the object handed over untouched.  With one, the
    message rides the envelope/retry machinery and the *delivered* copy is
    returned, so anything the channel let through is what the protocol
    actually computes on.
    """
    if transport is None:
        ledger.record(party_role(sender), party_role(receiver), message)
        return message
    return transport.deliver(ledger, sender, receiver, message)
