"""Retry policy: timeout, capped exponential backoff, deterministic jitter.

The simulation is synchronous, so "time" here is simulated network time:
the transport charges each failed attempt's timeout and each backoff wait
to the run's network clock (``CostReport.time_by_role["network"]``) rather
than sleeping.  Jitter is derived from a CRC32 of (link, seq, attempt), so
two runs with the same fault seed replay byte-identically — a requirement
for the chaos sweep's answers-must-match assertion.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """When to give up on a message and how long to wait in between.

    Attributes
    ----------
    max_attempts:
        Transmissions per message (first send included) before
        :class:`~repro.errors.RetryExhaustedError`.
    timeout_seconds:
        Simulated wait before an unanswered attempt is declared lost.
    base_backoff_seconds / backoff_multiplier / max_backoff_seconds:
        Capped exponential backoff between attempts: attempt ``a`` waits
        ``min(base * multiplier**a, max)`` (before jitter).
    jitter_fraction:
        Deterministic +/- spread applied to each backoff, in [0, 1).
    retry_budget:
        Cap on *total* retransmissions across the transport's lifetime
        (one transport per session), not per message.  ``None`` (the
        default) keeps the historical per-message-only behaviour; with a
        budget, the delivery that would spend retransmission number
        ``retry_budget + 1`` fails immediately with the budget accounting
        attached — so a degraded peer cannot amplify an overload into a
        retry storm.
    """

    max_attempts: int = 5
    timeout_seconds: float = 0.05
    base_backoff_seconds: float = 0.01
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 1.0
    jitter_fraction: float = 0.1
    retry_budget: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ConfigurationError("retry_budget must be >= 0 or None")
        if self.timeout_seconds < 0 or self.base_backoff_seconds < 0:
            raise ConfigurationError("timeout and backoff must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be >= 1")
        if self.max_backoff_seconds < self.base_backoff_seconds:
            raise ConfigurationError("max_backoff must be >= base_backoff")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ConfigurationError("jitter_fraction must be in [0, 1)")

    def _raw_backoff(self, attempt: int) -> float:
        """``min(base * multiplier**(attempt-1), max)`` without overflow.

        ``multiplier ** (attempt - 1)`` raises OverflowError once the
        exponent passes ~1024 for multiplier 2 — reachable with a large
        ``max_attempts`` — so saturation at the cap is decided in log
        space first and the original expression only evaluates when it is
        known to be in range (keeping every in-range value bit-identical
        to the pre-guard behaviour).
        """
        base, mult, cap = (
            self.base_backoff_seconds,
            self.backoff_multiplier,
            self.max_backoff_seconds,
        )
        if base == 0.0:
            return 0.0
        if mult > 1.0 and attempt > 1:
            log_raw = math.log(base) + (attempt - 1) * math.log(mult)
            # A half-unit margin keeps log-space rounding away from the
            # decision: anything this close to the cap from above is capped.
            if log_raw >= math.log(cap) + 0.5:
                return cap
        return min(base * mult ** (attempt - 1), cap)

    def backoff(self, attempt: int, link: tuple[str, str], seq: int) -> float:
        """Wait before retransmission number ``attempt`` (1-based retry).

        Jitter is a deterministic draw seeded per link: the CRC32 of
        (link, seq, attempt) is this transport's per-link RNG, so chaos
        runs replay byte-identically regardless of global RNG state.
        """
        raw = self._raw_backoff(attempt)
        token = f"{link[0]}|{link[1]}|{seq}|{attempt}".encode()
        unit = zlib.crc32(token) / 2**32  # deterministic in [0, 1)
        return raw * (1.0 - self.jitter_fraction + 2.0 * self.jitter_fraction * unit)
