"""Sequence-numbered, checksummed message envelopes.

Every message crossing a :class:`~repro.transport.channel.Channel` travels
inside an :class:`Envelope` carrying a per-link sequence number and a CRC32
checksum over a canonical byte fingerprint of the payload.  The receiver
recomputes the fingerprint: a mismatch means the payload was damaged in
transit and triggers a :class:`Nack` + retransmission instead of a silent
wrong decryption; a repeated sequence number means a duplicate (or a
delayed straggler) and is discarded.

The fingerprint reuses :mod:`repro.crypto.serialization` for ciphertexts
and keys, so the integrity check covers the exact bytes the cost model
charges for, and falls back to a tagged structural encoding for the plain
fields (ints, floats, points) of the protocol messages.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, fields, is_dataclass

from repro.crypto.paillier import Ciphertext, PaillierPublicKey
from repro.crypto.serialization import serialize_ciphertext, serialize_public_key
from repro.errors import TransportError
from repro.geometry.point import Point
from repro.protocol.messages import Message

#: Framing bytes charged per transmitted envelope: a 4-byte sequence
#: number plus a 4-byte CRC32 checksum.
ENVELOPE_OVERHEAD_BYTES = 8
#: Wire size of a NACK (the sequence number it rejects, plus framing).
NACK_BYTES = 8


def payload_fingerprint(message: object) -> bytes:
    """A canonical byte encoding of a message, for integrity checksums.

    Deterministic across processes (no ``id()``/hash randomization): every
    node is emitted as a type tag followed by a fixed-width or
    length-prefixed body.  Unknown leaf types fall back to ``repr``, which
    is stable for the value types used in protocol messages.
    """
    parts: list[bytes] = []
    _fingerprint_into(message, parts)
    return b"".join(parts)


def _fingerprint_into(value: object, parts: list[bytes]) -> None:
    if isinstance(value, Ciphertext):
        raw = serialize_ciphertext(value)
        parts.append(b"C" + struct.pack(">I", len(raw)) + raw)
    elif isinstance(value, PaillierPublicKey):
        raw = serialize_public_key(value)
        parts.append(b"K" + struct.pack(">I", len(raw)) + raw)
    elif isinstance(value, Point):
        parts.append(b"P" + struct.pack(">dd", value.x, value.y))
    elif isinstance(value, bool):
        parts.append(b"b1" if value else b"b0")
    elif isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
        parts.append(b"i" + struct.pack(">I", len(raw)) + raw)
    elif isinstance(value, float):
        parts.append(b"f" + struct.pack(">d", value))
    elif isinstance(value, str):
        raw = value.encode()
        parts.append(b"s" + struct.pack(">I", len(raw)) + raw)
    elif value is None:
        parts.append(b"n")
    elif isinstance(value, (tuple, list)):
        parts.append(b"T" + struct.pack(">I", len(value)))
        for item in value:
            _fingerprint_into(item, parts)
    elif is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__.encode()
        parts.append(b"D" + struct.pack(">I", len(name)) + name)
        for f in fields(value):
            _fingerprint_into(getattr(value, f.name), parts)
    else:
        raw = repr(value).encode()
        parts.append(b"r" + struct.pack(">I", len(raw)) + raw)


def payload_checksum(message: object) -> int:
    """CRC32 over the payload fingerprint — the envelope integrity check."""
    return zlib.crc32(payload_fingerprint(message))


@dataclass(frozen=True, slots=True)
class Envelope:
    """One transmission unit: link, sequence number, payload, checksum."""

    link: tuple[str, str]
    seq: int
    payload: Message
    checksum: int

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise TransportError("sequence numbers start at 0")

    @property
    def byte_size(self) -> int:
        return self.payload.byte_size + ENVELOPE_OVERHEAD_BYTES

    @property
    def transcript_kind(self) -> str:
        """Transcripts show the payload type, not the envelope wrapper."""
        return type(self.payload).__name__

    @property
    def intact(self) -> bool:
        """True when the payload still matches the sender's checksum."""
        return payload_checksum(self.payload) == self.checksum


def seal(link: tuple[str, str], seq: int, payload: Message) -> Envelope:
    """Sender-side envelope construction: checksum the outgoing payload."""
    return Envelope(link, seq, payload, payload_checksum(payload))


@dataclass(frozen=True, slots=True)
class Nack:
    """Receiver -> sender: a named sequence number arrived corrupted."""

    seq: int

    @property
    def byte_size(self) -> int:
        return NACK_BYTES

    @property
    def transcript_kind(self) -> str:
        return "Nack"
