"""Legacy setup shim: the build environment has no `wheel` package, so the
PEP-517 editable path (`pip install -e .`) cannot build an editable wheel.
`python setup.py develop` installs the same editable package without it.
All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
